"""Command-line interface: regenerate any paper experiment.

Examples::

    python -m repro table1                 # utilization comparison
    python -m repro table2 --scenario 690t_multi
    python -m repro fig7
    python -m repro optimize --network googlenet --part 690t --dtype fixed16
    python -m repro validate               # simulator vs model
    python -m repro hls --network alexnet --part 485t
    python -m repro dse sweep --networks alexnet squeezenet --parts 485t 690t
    python -m repro dse frontier --store dse_results.jsonl
    python -m repro serve --network alexnet,googlenet --rate 2000 --part VX485T
    python -m repro dse rank --store dse_results.jsonl --rate 1500 --p99-ms 80
    python -m repro fleet simulate --network alexnet --replicas 4 --rate 20000
    python -m repro fleet plan --network alexnet --rate 30000 --p99-ms 60
    python -m repro dse cost --store dse_results.jsonl --rate 20000 --p99-ms 80
    python -m repro serve --network alexnet --emit-timeseries --trace-out t.json
    python -m repro report runs/fleet.json --out report.md
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.datatypes import DataType
from .fpga.parts import budget_for
from .networks import available_networks, get_network
from .opt import optimize_multi_clp, optimize_single_clp

__all__ = ["main", "build_parser"]


def _add_obs_args(p) -> None:
    """Observability flags shared by ``serve`` and ``fleet simulate``.

    All of them default off, leaving the run bit-identical to a plain
    invocation; turning any on forces the reference event engine under
    ``--engine auto`` (the fast path cannot observe per-event state).
    """
    p.add_argument("--emit-timeseries", action="store_true",
                   help="sample windowed telemetry (queue depth, "
                   "utilization, p99, drops, ...) onto the result")
    p.add_argument("--timeseries-window-ms", type=float, default=None,
                   metavar="MS",
                   help="telemetry window width (implies --emit-timeseries; "
                   "default: horizon split into 60 windows)")
    p.add_argument("--trace-out", metavar="FILE", default=None,
                   help="write the request-lifecycle trace: Chrome "
                   "trace_event JSON, or JSONL if FILE ends in .jsonl")
    p.add_argument("--report", metavar="FILE", default=None,
                   help="render a one-page Markdown report of the run")


def _add_overload_args(p) -> None:
    """Overload-control flags shared by ``serve`` and the fleet commands.

    All default off; any active flag forces the reference event engine
    under ``--engine auto`` (the fast path has no per-request client
    state).  ``--retries 0`` means *unlimited* attempts — the naive
    client that powers retry-storm demonstrations.
    """
    from .serve import JITTER_MODES, QUEUE_POLICIES

    p.add_argument("--queue-policy", default="fifo",
                   choices=list(QUEUE_POLICIES),
                   help="queue discipline: fifo, edf (earliest deadline "
                   "first), or priority (fresh work before retries)")
    p.add_argument("--admission", type=float, default=None, metavar="RPS",
                   help="per-tenant token-bucket admission rate (req/s); "
                   "arrivals beyond the bucket are rejected at enqueue")
    p.add_argument("--admission-burst", type=float, default=8.0,
                   metavar="TOKENS",
                   help="token-bucket burst size for --admission")
    p.add_argument("--deadline-admission", action="store_true",
                   help="reject at enqueue when the estimated queue wait "
                   "already exceeds the tenant's deadline")
    p.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                   help="request deadline; enables expiry shedding under "
                   "edf/priority queues and deadline admission")
    p.add_argument("--retries", type=int, default=None, metavar="N",
                   help="closed-loop clients: retry rejected/dropped/lost "
                   "requests up to N attempts (0 = unlimited)")
    p.add_argument("--retry-backoff-ms", type=float, default=0.1,
                   metavar="MS", help="base backoff between attempts")
    p.add_argument("--retry-cap-ms", type=float, default=None, metavar="MS",
                   help="backoff ceiling (default: 32x base)")
    p.add_argument("--retry-jitter", default="decorrelated",
                   choices=list(JITTER_MODES),
                   help="backoff jitter mode")
    p.add_argument("--hedge-ms", type=float, default=None, metavar="MS",
                   help="send a hedged duplicate if no response within MS")
    p.add_argument("--brownout-p99-ms", type=float, default=None,
                   metavar="MS",
                   help="brownout controller: shed lowest-priority traffic "
                   "to keep the protected class's windowed p99 under MS")
    p.add_argument("--brownout-window-ms", type=float, default=2.0,
                   metavar="MS", help="brownout control-loop window")


def _overload_spec(args: argparse.Namespace):
    """Build an :class:`OverloadSpec` from the shared flags, or ``None``.

    Returns ``None`` whenever every overload flag is at its default, so
    plain invocations take the bit-exact fast path untouched.
    """
    from .serve import AdmissionPolicy, BrownoutPolicy, OverloadSpec, RetryPolicy

    admission = None
    if args.admission is not None or args.deadline_admission:
        admission = AdmissionPolicy(
            rate_rps=args.admission,
            burst=args.admission_burst,
            deadline_admission=args.deadline_admission,
        )
    retry = None
    if args.retries is not None or args.hedge_ms is not None:
        retry = RetryPolicy(
            max_attempts=args.retries if args.retries is not None else 3,
            base_ms=args.retry_backoff_ms,
            cap_ms=args.retry_cap_ms,
            jitter=args.retry_jitter,
            hedge_ms=args.hedge_ms,
        )
    brownout = None
    if args.brownout_p99_ms is not None:
        brownout = BrownoutPolicy(
            p99_ms=args.brownout_p99_ms,
            window_ms=args.brownout_window_ms,
        )
    spec = OverloadSpec(
        queue_policy=args.queue_policy,
        admission=admission,
        retry=retry,
        brownout=brownout,
        deadline_ms=args.deadline_ms,
    )
    return spec if spec.active else None


def _add_detector_args(p) -> None:
    """Failure-detection flags shared by the fleet commands.

    All default off (oracle health, no timeouts) — bit-exact with the
    pre-detector engine.  ``--detector probe`` or ``--request-timeout-ms``
    forces the reference event engine under ``--engine auto``.
    """
    from .fleet import DETECTOR_MODES

    p.add_argument("--detector", default=None, choices=list(DETECTOR_MODES),
                   help="how the fleet learns replica health: oracle "
                   "(instant, perfect) or probe (health checks + outlier "
                   "ejection, with real detection latency)")
    p.add_argument("--probe-interval-ms", type=float, default=None,
                   metavar="MS",
                   help="health-probe period (default: 4 epochs)")
    p.add_argument("--probe-timeout-ms", type=float, default=None,
                   metavar="MS",
                   help="probe deadline; slow/delayed boards fail probes "
                   "(default: 2 epochs)")
    p.add_argument("--outlier-error-rate", type=float, default=None,
                   metavar="RATE",
                   help="eject replicas whose windowed error rate reaches "
                   "RATE (probe mode; default 0.5)")
    p.add_argument("--outlier-p99-factor", type=float, default=None,
                   metavar="X",
                   help="eject replicas whose windowed p99 exceeds X times "
                   "the fleet median (probe mode; default 3.0)")
    p.add_argument("--ejection-window-ms", type=float, default=None,
                   metavar="MS",
                   help="outlier-evaluation window (default: 8 epochs)")
    p.add_argument("--request-timeout-ms", type=float, default=None,
                   metavar="MS",
                   help="pull back requests older than MS and fail them "
                   "over to another replica")
    p.add_argument("--max-failovers", type=int, default=None, metavar="N",
                   help="failover attempts per request before it counts "
                   "timed-out (default 1)")


def _detector_spec(args: argparse.Namespace):
    """Build a :class:`DetectorSpec` from the shared flags, or ``None``.

    Returns ``None`` whenever every detector flag is at its default, so
    plain invocations keep the bit-exact fast path.  A timeout or
    outlier flag without ``--detector`` implies the obvious mode
    (``oracle`` for a bare timeout, ``probe`` for outlier tuning).
    """
    from .fleet import DetectorSpec

    tuning = {
        "probe_interval_ms": args.probe_interval_ms,
        "probe_timeout_ms": args.probe_timeout_ms,
        "outlier_error_rate": args.outlier_error_rate,
        "outlier_p99_factor": args.outlier_p99_factor,
        "ejection_window_ms": args.ejection_window_ms,
        "request_timeout_ms": args.request_timeout_ms,
        "max_failovers": args.max_failovers,
    }
    provided = {k: v for k, v in tuning.items() if v is not None}
    mode = args.detector
    if mode is None:
        if not provided:
            return None
        probe_only = set(provided) - {"request_timeout_ms", "max_failovers"}
        mode = "probe" if probe_only else "oracle"
    return DetectorSpec(mode=mode, **provided)


def build_parser() -> argparse.ArgumentParser:
    from . import __version__
    from .scenario import SCENARIO_NAMES
    from .serve import ARRIVAL_KINDS, DROP_POLICIES
    from .sim.fastpath import ENGINES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-CLP CNN accelerator resource partitioning "
        "(ISCA 2017 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for table in ("table1", "table3", "table5", "table8", "table9"):
        sub.add_parser(table, help=f"regenerate {table}")
    for table, default in (("table2", "485t_single"), ("table4", "485t_multi"),
                           ("table6", "485t_single"), ("table7", "690t_multi")):
        p = sub.add_parser(table, help=f"regenerate {table}")
        p.add_argument("--scenario", default=default)
    sub.add_parser("fig6", help="BRAM vs bandwidth tradeoff curves")
    p7 = sub.add_parser("fig7", help="throughput vs DSP budget sweep")
    p7.add_argument("--max-dsp", type=int, default=10000)

    opt = sub.add_parser("optimize", help="optimize a custom scenario")
    opt.add_argument("--network", default="alexnet", choices=available_networks())
    opt.add_argument("--part", default="485t")
    opt.add_argument("--dtype", default="float32")
    opt.add_argument("--single", action="store_true")
    opt.add_argument("--max-clps", type=int, default=6)
    opt.add_argument("--bandwidth-gbps", type=float, default=None)
    opt.add_argument("--frequency-mhz", type=float, default=100.0)
    opt.add_argument("--ordering", default="auto")
    opt.add_argument("--save", metavar="FILE", default=None,
                     help="write the design to a JSON file")

    gantt = sub.add_parser("gantt", help="epoch schedule of a design")
    gantt.add_argument("--network", default="alexnet", choices=available_networks())
    gantt.add_argument("--part", default="485t")
    gantt.add_argument("--dtype", default="float32")
    gantt.add_argument("--load", metavar="FILE", default=None,
                       help="render a saved design instead of optimizing")

    joint = sub.add_parser(
        "joint", help="jointly optimize one accelerator for several CNNs"
    )
    joint.add_argument("networks", nargs="+", choices=available_networks())
    joint.add_argument("--part", default="690t")
    joint.add_argument("--dtype", default="fixed16")

    latency = sub.add_parser(
        "latency", help="latency/throughput frontier (adjacent assignment)"
    )
    latency.add_argument("--network", default="alexnet",
                         choices=available_networks())
    latency.add_argument("--part", default="485t")
    latency.add_argument("--dtype", default="float32")
    latency.add_argument("--max-clps", type=int, default=6)

    sub.add_parser("validate", help="simulators vs analytic models")

    serve = sub.add_parser(
        "serve",
        help="simulate multi-tenant traffic over an optimized design",
        description="Event-driven, seeded load test of a Multi-CLP design "
        "(Section 4.1 epoch pipeline; Section 4.3 joint multi-CNN serving). "
        "With several networks, one joint accelerator serves them all; each "
        "network is a tenant with its own arrival stream and FIFO queue.",
    )
    serve.add_argument("--networks", "--network", dest="networks", nargs="+",
                       default=["alexnet"], metavar="NET",
                       help="tenant networks (space- or comma-separated)")
    serve.add_argument("--part", default="485t")
    serve.add_argument("--dtype", default="float32")
    serve.add_argument("--rate", type=float, default=1000.0,
                       help="request rate per tenant, req/s")
    serve.add_argument("--rates", nargs="+", type=float, default=None,
                       metavar="RPS",
                       help="per-tenant rates (overrides --rate; one per network)")
    serve.add_argument("--priorities", nargs="+", type=int, default=None,
                       metavar="P",
                       help="per-tenant priority classes (one per network; "
                       "higher is more important — brownout sheds lowest "
                       "first)")
    serve.add_argument("--process", default="poisson",
                       choices=list(ARRIVAL_KINDS))
    serve.add_argument("--burstiness", type=float, default=4.0,
                       help="burst rate multiplier for --process bursty")
    serve.add_argument("--burst-period-ms", type=float, default=5.0,
                       help="mean on+off burst cycle for --process bursty")
    serve.add_argument("--duration-ms", type=float, default=100.0,
                       help="traffic window; floored at 3 pipeline latencies "
                       "unless --drain is given")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--queue-depth", type=int, default=64)
    serve.add_argument("--policy", default="drop-tail",
                       choices=list(DROP_POLICIES))
    serve.add_argument("--frequency-mhz", type=float, default=100.0)
    serve.add_argument("--bandwidth-gbps", type=float, default=None)
    serve.add_argument("--max-clps", type=int, default=6)
    serve.add_argument("--calibrate", default="model",
                       choices=["model", "simulate"],
                       help="epoch length from the analytic model or from the "
                       "cycle-level system simulator")
    serve.add_argument("--drain", action="store_true",
                       help="stop arrivals at the horizon but serve out the queues")
    serve.add_argument("--engine", default="auto",
                       choices=list(ENGINES),
                       help="epoch-batched fast path or reference event loop "
                       "(bit-identical results; auto picks fast)")
    serve.add_argument("--load", metavar="FILE", default=None,
                       help="serve a saved design JSON instead of optimizing")
    serve.add_argument("--save", metavar="FILE", default=None,
                       help="write the ServeResult to a JSON file")
    _add_obs_args(serve)
    _add_overload_args(serve)

    fleet = sub.add_parser(
        "fleet",
        help="multi-FPGA cluster simulation and capacity planning",
        description="Scale-out layer over `repro serve`: N replicas of an "
        "optimized design share the arrival streams through a pluggable "
        "load balancer; a capacity planner binary-searches the minimum "
        "fleet meeting an SLO, and a reactive autoscaler steps between "
        "traffic windows.",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    from .fleet.balancer import BALANCER_NAMES

    def add_fleet_design_args(p) -> None:
        p.add_argument("--networks", "--network", dest="networks", nargs="+",
                       default=["alexnet"], metavar="NET",
                       help="tenant networks (space- or comma-separated; "
                       "several networks build one joint design per replica)")
        p.add_argument("--part", default="485t")
        p.add_argument("--dtype", default="float32")
        p.add_argument("--max-clps", type=int, default=6)
        p.add_argument("--frequency-mhz", type=float, default=100.0)
        p.add_argument("--bandwidth-gbps", type=float, default=None)
        p.add_argument("--calibrate", default="model",
                       choices=["model", "simulate"])
        p.add_argument("--load", metavar="FILE", default=None,
                       help="replicate a saved design JSON instead of "
                       "optimizing")
        p.add_argument("--balancer", default="round-robin",
                       choices=list(BALANCER_NAMES))
        p.add_argument("--queue-depth", type=int, default=64)
        p.add_argument("--policy", default="drop-tail",
                       choices=list(DROP_POLICIES))
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--scenario", default=None, metavar="NAME",
                       choices=list(SCENARIO_NAMES),
                       help="failure/surge drill from the scenario library "
                       "(see `repro scenario list`)")
        p.add_argument("--engine", default="auto",
                       choices=list(ENGINES),
                       help="epoch-batched fast path or reference event loop "
                       "(bit-identical results; auto picks fast for "
                       "scenario-free runs)")
        _add_overload_args(p)
        _add_detector_args(p)

    fsim = fleet_sub.add_parser(
        "simulate", help="simulate traffic over a replicated fleet"
    )
    add_fleet_design_args(fsim)
    fsim.add_argument("--replicas", type=int, default=2)
    fsim.add_argument("--rate", type=float, default=1000.0,
                      help="request rate per tenant, req/s")
    fsim.add_argument("--rates", nargs="+", type=float, default=None,
                      metavar="RPS",
                      help="per-tenant rates (overrides --rate)")
    fsim.add_argument("--priorities", nargs="+", type=int, default=None,
                      metavar="P",
                      help="per-tenant priority classes (one per network; "
                      "higher is more important — brownout sheds lowest "
                      "first)")
    fsim.add_argument("--process", default="poisson",
                      choices=list(ARRIVAL_KINDS))
    fsim.add_argument("--burstiness", type=float, default=4.0)
    fsim.add_argument("--burst-period-ms", type=float, default=5.0)
    fsim.add_argument("--duration-ms", type=float, default=100.0,
                      help="traffic window; floored at 3 pipeline latencies "
                      "unless --drain is given")
    fsim.add_argument("--drain", action="store_true",
                      help="stop arrivals at the horizon but serve out queues")
    fsim.add_argument("--save", metavar="FILE", default=None,
                      help="write the FleetResult to a JSON file")
    fsim.add_argument("--json", action="store_true",
                      help="emit the FleetResult record as JSON on stdout "
                      "(timeseries included only with --emit-timeseries)")
    _add_obs_args(fsim)

    fplan = fleet_sub.add_parser(
        "plan", help="minimum replicas meeting an SLO at a target rate"
    )
    add_fleet_design_args(fplan)
    fplan.add_argument("--rate", type=float, default=1000.0,
                       help="offered rate per tenant, req/s")
    fplan.add_argument("--p99-ms", type=float, default=None,
                       help="tail-latency SLO; unset disables the clause")
    fplan.add_argument("--max-drop-rate", type=float, default=0.0)
    fplan.add_argument("--min-throughput", type=float, default=None,
                       metavar="RPS")
    fplan.add_argument("--min-goodput", type=float, default=None,
                       metavar="RPS",
                       help="floor on deadline-aware goodput (completions "
                       "minus late ones), req/s")
    fplan.add_argument("--max-replicas", type=int, default=64)
    fplan.add_argument("--duration-ms", type=float, default=100.0)
    fplan.add_argument("--redundancy", type=int, default=0, metavar="N",
                       help="plan N+k: force this many extra replicas down "
                       "over the worst window of every probe")

    fauto = fleet_sub.add_parser(
        "autoscale", help="step a reactive autoscaler across traffic windows"
    )
    add_fleet_design_args(fauto)
    fauto.add_argument("--rates", nargs="+", type=float, required=True,
                       metavar="RPS",
                       help="per-window offered rate schedule, req/s per tenant")
    fauto.add_argument("--window-ms", type=float, default=50.0)
    fauto.add_argument("--min-replicas", type=int, default=1)
    fauto.add_argument("--max-replicas", type=int, default=16)
    fauto.add_argument("--step", type=int, default=1)
    fauto.add_argument("--p99-high-ms", type=float, default=None,
                       help="scale up when observed p99 exceeds this")
    fauto.add_argument("--queue-high", type=float, default=8.0,
                       help="scale up when mean queue/replica exceeds this")
    fauto.add_argument("--p99-low-ms", type=float, default=None)
    fauto.add_argument("--queue-low", type=float, default=1.0,
                       help="scale down when mean queue/replica is below this")
    fauto.add_argument("--initial-replicas", type=int, default=None)
    fauto.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write the scaling decisions as a Chrome "
                       "trace_event JSON (or JSONL if FILE ends in .jsonl)")
    fauto.add_argument("--report", metavar="FILE", default=None,
                       help="render a Markdown report of the autoscale trace")

    scen = sub.add_parser(
        "scenario",
        help="failure/surge scenario library",
        description="Named, seeded, horizon-relative drills (rack loss, "
        "flash crowd, rolling reboot, ...) usable as --scenario NAME on "
        "`repro fleet simulate|plan|autoscale` and `repro dse resilience`.",
    )
    scen_sub = scen.add_subparsers(dest="scenario_command", required=True)
    slist = scen_sub.add_parser("list", help="list the named scenarios")
    slist.add_argument("--json", action="store_true",
                       help="machine-readable output")
    sdesc = scen_sub.add_parser("describe", help="describe one scenario")
    sdesc.add_argument("name", metavar="NAME")
    sdesc.add_argument("--json", action="store_true",
                       help="emit the scenario spec as JSON")

    rep = sub.add_parser(
        "report",
        help="render a Markdown report over saved runs",
        description="One-page Markdown summary of saved run records: "
        "run table, cross-run aggregates, SLO attainment, resilience, "
        "time-series sparklines, and (with --bench-history) the "
        "benchmark perf trajectory.",
    )
    rep.add_argument("path", metavar="PATH",
                     help="a serve/fleet run JSON (from --save), a "
                     "directory of them, or a DSE store .jsonl")
    rep.add_argument("--out", metavar="FILE", default=None,
                     help="write the report to FILE instead of stdout")
    rep.add_argument("--p99-ms", type=float, default=None,
                     help="score SLO attainment against this tail SLO")
    rep.add_argument("--max-drop-rate", type=float, default=0.0)
    rep.add_argument("--min-throughput", type=float, default=None,
                     metavar="RPS")
    rep.add_argument("--bench-history", metavar="FILE", default=None,
                     help="BENCH history.jsonl for the perf-trajectory "
                     "section")

    hls = sub.add_parser("hls", help="emit HLS C++ for an optimized design")
    hls.add_argument("--network", default="alexnet", choices=available_networks())
    hls.add_argument("--part", default="485t")
    hls.add_argument("--dtype", default="float32")
    hls.add_argument("--single", action="store_true")

    nets = sub.add_parser("networks", help="describe the network zoo")
    nets.add_argument("--network", default=None)

    dse = sub.add_parser(
        "dse", help="design-space exploration: parallel cached sweeps"
    )
    dse_sub = dse.add_subparsers(dest="dse_command", required=True)

    sweep = dse_sub.add_parser(
        "sweep", help="solve a cross-product of design points"
    )
    sweep.add_argument("--networks", nargs="+", default=["alexnet"],
                       choices=available_networks())
    sweep.add_argument("--parts", nargs="+", default=None,
                       help="FPGA parts (default 485t 690t unless --budgets)")
    sweep.add_argument("--budgets", nargs="+", default=[], metavar="DSP:BRAM",
                       help="synthetic budgets, e.g. 1000:800")
    sweep.add_argument("--dtypes", nargs="+", default=["float32"])
    sweep.add_argument("--bandwidths", nargs="+", type=float, default=[],
                       metavar="GBPS",
                       help="bandwidth caps; unconstrained if omitted")
    sweep.add_argument("--frequency-mhz", type=float, default=100.0)
    sweep.add_argument("--modes", nargs="+", default=["multi"],
                       choices=["single", "multi"])
    sweep.add_argument("--max-clps", nargs="+", type=int, default=[6])
    sweep.add_argument("--orderings", nargs="+", default=["auto"])
    sweep.add_argument("--store", default="dse_results.jsonl",
                       help="JSONL result store (resumable cache)")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: CPU count)")
    sweep.add_argument("--quiet", action="store_true",
                       help="summary line only, no result table")

    frontier = dse_sub.add_parser(
        "frontier", help="Pareto frontier of a result store"
    )
    from .dse.point import METRIC_NAMES

    frontier.add_argument("--store", default="dse_results.jsonl")
    frontier.add_argument("--maximize", nargs="+", default=["throughput"],
                          choices=METRIC_NAMES)
    frontier.add_argument("--minimize", nargs="+", default=["dsp"],
                          choices=METRIC_NAMES)

    status = dse_sub.add_parser("status", help="describe a result store")
    status.add_argument("--store", default="dse_results.jsonl")

    rank = dse_sub.add_parser(
        "rank", help="rank stored designs by SLO attainment under traffic"
    )
    rank.add_argument("--store", default="dse_results.jsonl")
    rank.add_argument("--rate", type=float, default=1000.0,
                      help="request rate, req/s")
    rank.add_argument("--p99-ms", type=float, default=None,
                      help="tail-latency SLO; unset disables the clause")
    rank.add_argument("--max-drop-rate", type=float, default=0.0)
    rank.add_argument("--min-throughput", type=float, default=None,
                      metavar="RPS")
    rank.add_argument("--duration-ms", type=float, default=200.0)
    rank.add_argument("--seed", type=int, default=0)
    rank.add_argument("--process", default="poisson",
                      choices=list(ARRIVAL_KINDS))
    rank.add_argument("--queue-depth", type=int, default=64)
    rank.add_argument("--policy", default="drop-tail",
                      choices=list(DROP_POLICIES))

    cost = dse_sub.add_parser(
        "cost",
        help="rank stored designs by fleet cost to serve an SLO",
        description="Capacity-plan every solved sweep point (minimum "
        "replicas meeting the SLO at the target rate) and rank by "
        "boards-needed x relative board cost — the provisioning view of "
        "a sweep, as opposed to `rank`'s per-board SLO attainment.",
    )
    cost.add_argument("--store", default="dse_results.jsonl")
    cost.add_argument("--rate", type=float, default=1000.0,
                      help="offered rate per tenant, req/s")
    cost.add_argument("--p99-ms", type=float, default=None)
    cost.add_argument("--max-drop-rate", type=float, default=0.0)
    cost.add_argument("--min-throughput", type=float, default=None,
                      metavar="RPS")
    cost.add_argument("--max-replicas", type=int, default=32)
    cost.add_argument("--duration-ms", type=float, default=100.0)
    cost.add_argument("--seed", type=int, default=0)
    cost.add_argument("--balancer", default="least-outstanding",
                      choices=list(BALANCER_NAMES))
    cost.add_argument("--queue-depth", type=int, default=64)
    cost.add_argument("--policy", default="drop-tail",
                      choices=list(DROP_POLICIES))

    resil = dse_sub.add_parser(
        "resilience",
        help="rank stored designs by SLO attainment through a failure drill",
        description="Run every solved sweep point as a fixed-size fleet "
        "under a named scenario and rank by in-incident tail latency and "
        "lost requests — which design degrades least when boards die or "
        "traffic spikes.",
    )
    resil.add_argument("--store", default="dse_results.jsonl")
    resil.add_argument("--rate", type=float, default=1000.0,
                       help="offered rate per tenant, req/s")
    resil.add_argument("--scenario", default="rack-loss", metavar="NAME",
                       help="drill from the scenario library")
    resil.add_argument("--replicas", type=int, default=4)
    resil.add_argument("--p99-ms", type=float, default=None)
    resil.add_argument("--max-drop-rate", type=float, default=0.1,
                       help="shed budget; keep above the scenario's "
                       "intrinsic loss floor (in-flight work on failed "
                       "boards is always lost)")
    resil.add_argument("--min-throughput", type=float, default=None,
                       metavar="RPS")
    resil.add_argument("--duration-ms", type=float, default=100.0)
    resil.add_argument("--seed", type=int, default=0)
    resil.add_argument("--balancer", default="least-outstanding",
                       choices=list(BALANCER_NAMES))
    resil.add_argument("--queue-depth", type=int, default=64)
    resil.add_argument("--policy", default="drop-tail",
                       choices=list(DROP_POLICIES))
    return parser


def _cmd_tables(args: argparse.Namespace) -> str:
    from . import analysis

    command = args.command
    if command in ("table2", "table4", "table6", "table7"):
        return getattr(analysis, command)(args.scenario).format()
    return getattr(analysis, command)().format()


def _cmd_fig6(args: argparse.Namespace) -> str:
    from .analysis import figure6, paper_data

    curves = figure6()
    blocks = [curve.format() for curve in curves]
    blocks.append("Paper reference points (BRAM, GB/s):")
    blocks.extend(
        f"  {name}: {point}" for name, point in paper_data.FIGURE6_POINTS.items()
    )
    return "\n\n".join(blocks)


def _cmd_fig7(args: argparse.Namespace) -> str:
    from .analysis import figure7
    from .analysis.figures import DEFAULT_DSP_SWEEP

    sweep = tuple(d for d in DEFAULT_DSP_SWEEP if d <= args.max_dsp)
    return figure7(dsp_sweep=sweep).format()


def _cmd_optimize(args: argparse.Namespace) -> str:
    network = get_network(args.network)
    dtype = DataType.from_name(args.dtype)
    budget = budget_for(
        args.part,
        bandwidth_gbps=args.bandwidth_gbps,
        frequency_mhz=args.frequency_mhz,
    )
    if args.single:
        design, report = optimize_single_clp(
            network, budget, dtype, ordering=args.ordering, return_report=True
        )
    else:
        design, report = optimize_multi_clp(
            network, budget, dtype, max_clps=args.max_clps,
            ordering=args.ordering, return_report=True,
        )
    lines = [design.describe()]
    lines.append(
        f"throughput @{budget.frequency_mhz:.0f}MHz: "
        f"{design.throughput(budget.frequency_mhz):.1f} img/s"
    )
    lines.append(
        f"required bandwidth: "
        f"{design.required_bandwidth_gbps(budget.frequency_mhz):.2f} GB/s"
    )
    lines.append(
        f"optimizer: target={report.target:.3f}, "
        f"{report.iterations} iterations, "
        f"{report.candidates_evaluated} candidates"
    )
    if args.save:
        from .core.serialize import dump_design

        dump_design(design, args.save)
        lines.append(f"design written to {args.save}")
    return "\n".join(lines)


def _cmd_gantt(args: argparse.Namespace) -> str:
    from .analysis.visualize import schedule_gantt

    if args.load:
        from .core.serialize import load_design

        design = load_design(args.load)
    else:
        network = get_network(args.network)
        dtype = DataType.from_name(args.dtype)
        design = optimize_multi_clp(network, budget_for(args.part), dtype)
    return schedule_gantt(design)


def _cmd_joint(args: argparse.Namespace) -> str:
    from .opt import optimize_joint

    networks = [get_network(name) for name in args.networks]
    dtype = DataType.from_name(args.dtype)
    joint = optimize_joint(networks, budget_for(args.part), dtype)
    lines = [joint.describe()]
    for name, rate in joint.throughput_per_network(100.0).items():
        lines.append(f"  {name}: {rate:.1f} img/s @100MHz")
    return "\n".join(lines)


def _cmd_latency(args: argparse.Namespace) -> str:
    from .analysis.report import render_table
    from .opt import latency_throughput_frontier

    network = get_network(args.network)
    dtype = DataType.from_name(args.dtype)
    frontier = latency_throughput_frontier(
        network, budget_for(args.part), dtype, max_clps=args.max_clps
    )
    rows = [
        (cap, f"{latency / 1e6:.2f}M", f"{epoch / 1e3:.0f}k")
        for cap, latency, epoch in frontier
    ]
    return render_table(
        ["CLPs", "latency (cycles)", "epoch (cycles)"],
        rows,
        title=f"Latency/throughput frontier: {network.name} on {args.part}",
    )


def _cmd_validate(args: argparse.Namespace) -> str:
    from .analysis.tables import design_for
    from .sim import simulate_clp, simulate_system

    lines = ["Simulator vs analytic model validation", ""]
    design = design_for("alexnet", "485t", "float32", single=False)
    sys_res = simulate_system(design)
    lines.append(
        f"AlexNet 485T Multi-CLP, unlimited bandwidth: "
        f"sim epoch {sys_res.epoch_cycles:.0f} vs model "
        f"{design.epoch_cycles} "
        f"({sys_res.epoch_cycles / design.epoch_cycles:.4f}x)"
    )
    need = design.required_bandwidth_bytes_per_cycle()
    capped = simulate_system(design, bytes_per_cycle=need * 1.2)
    lines.append(
        f"  at 1.2x modelled bandwidth: sim epoch {capped.epoch_cycles:.0f} "
        f"({capped.epoch_cycles / design.epoch_cycles:.4f}x of model)"
    )
    for clp_index, clp in enumerate(design.clps):
        res = simulate_clp(clp, pipeline_depth=12)
        delta = res.total_cycles - clp.total_cycles
        lines.append(
            f"  CLP{clp_index} RTL-style sim (depth 12): +{delta:.0f} cycles "
            f"({delta / clp.total_cycles:.2%} of model)"
        )
    return "\n".join(lines)


def _split_network_names(entries: List[str]) -> List[str]:
    names = [name for entry in entries for name in entry.split(",") if name]
    if not names:
        raise ValueError("no networks given")
    return names


def _serving_design(args: argparse.Namespace, names: List[str], budget, dtype):
    """(design, tenant names) from ``--load`` or by optimizing ``names``.

    Shared by ``repro serve`` and the ``repro fleet`` subcommands: one
    network optimizes a Multi-CLP design, several build a joint
    accelerator serving them all, and ``--load`` replays a pinned JSON.
    """
    if args.load:
        from .core.serialize import load_design

        design = load_design(args.load)
        return design, [design.network.name]
    if len(names) > 1:
        from .opt import optimize_joint

        networks = [get_network(name) for name in names]
        design = optimize_joint(networks, budget, dtype, max_clps=args.max_clps)
        return design, [network.name for network in networks]
    network = get_network(names[0])
    design = optimize_multi_clp(network, budget, dtype, max_clps=args.max_clps)
    return design, [network.name]


def _tenant_specs(args: argparse.Namespace, tenant_names, cycles_per_second):
    """Per-tenant arrival streams from the shared traffic arguments."""
    from .serve import TenantSpec, make_arrival_process

    rates = args.rates if args.rates is not None else [args.rate] * len(
        tenant_names
    )
    if len(rates) != len(tenant_names):
        raise ValueError(f"{len(tenant_names)} tenants but {len(rates)} rates")
    priorities = getattr(args, "priorities", None)
    if priorities is None:
        priorities = [0] * len(tenant_names)
    if len(priorities) != len(tenant_names):
        raise ValueError(
            f"{len(tenant_names)} tenants but {len(priorities)} priorities"
        )
    return [
        TenantSpec(
            name=name,
            process=make_arrival_process(
                args.process,
                rate / cycles_per_second,
                burstiness=args.burstiness,
                period_cycles=args.burst_period_ms * 1e-3 * cycles_per_second,
            ),
            priority=priority,
        )
        for name, rate, priority in zip(tenant_names, rates, priorities)
    ]


def _traffic_window_cycles(args: argparse.Namespace, design, budget) -> float:
    """``--duration-ms`` in cycles, floored for non-drained windows.

    A window shorter than the pipeline can never complete a request
    (every latency is >= depth * epoch); floor it at a few pipeline
    latencies so the default invocation reports real percentiles.
    """
    from .serve import pipeline_latency_cycles

    duration_cycles = args.duration_ms * 1e-3 * budget.cycles_per_second
    if not args.drain:
        duration_cycles = max(
            duration_cycles,
            3.0 * pipeline_latency_cycles(design, budget.bytes_per_cycle()),
        )
    return duration_cycles


def _obs_spec(args: argparse.Namespace, cycles_per_second: float):
    """(ObsSpec, TraceRecorder) from the shared obs flags, or (None, None)."""
    want_timeseries = (
        args.emit_timeseries or args.timeseries_window_ms is not None
    )
    if not want_timeseries and args.trace_out is None:
        return None, None
    from .obs import ObsSpec, TraceRecorder

    trace = TraceRecorder() if args.trace_out else None
    window_cycles = (
        args.timeseries_window_ms * 1e-3 * cycles_per_second
        if args.timeseries_window_ms is not None
        else None
    )
    spec = ObsSpec(
        timeseries=want_timeseries, window_cycles=window_cycles, trace=trace
    )
    return spec, trace


def _write_trace(trace, path: str, frequency_mhz: float) -> None:
    if path.endswith(".jsonl"):
        trace.write_jsonl(path, frequency_mhz=frequency_mhz)
    else:
        trace.write_chrome(path, frequency_mhz=frequency_mhz)


def _write_run_report(result, source: str, path: str) -> None:
    from .analysis.report import render_run_report

    with open(path, "w") as handle:
        handle.write(render_run_report([result], [source]))


def _cmd_serve(args: argparse.Namespace) -> str:
    from .serve import simulate_traffic

    from .opt import OptimizationError

    try:
        names = _split_network_names(args.networks)
        budget = budget_for(
            args.part,
            bandwidth_gbps=args.bandwidth_gbps,
            frequency_mhz=args.frequency_mhz,
        )
        dtype = DataType.from_name(args.dtype)
        design, tenant_names = _serving_design(args, names, budget, dtype)
        tenants = _tenant_specs(args, tenant_names, budget.cycles_per_second)
        duration_cycles = _traffic_window_cycles(args, design, budget)
        obs, trace = _obs_spec(args, budget.cycles_per_second)
        result = simulate_traffic(
            design,
            tenants,
            duration_cycles=duration_cycles,
            frequency_mhz=args.frequency_mhz,
            seed=args.seed,
            queue_depth=args.queue_depth,
            policy=args.policy,
            bytes_per_cycle=budget.bytes_per_cycle(),
            calibrate=args.calibrate,
            drain=args.drain,
            engine=args.engine,
            obs=obs,
            overload=_overload_spec(args),
        )
    except (ValueError, OptimizationError) as exc:
        raise SystemExit(f"repro serve: error: {exc}") from None
    lines = [result.format()]
    if args.save:
        from .core.serialize import dump_serve_result

        dump_serve_result(result, args.save)
        lines.append(f"serve result written to {args.save}")
    if trace is not None:
        _write_trace(trace, args.trace_out, args.frequency_mhz)
        lines.append(f"trace written to {args.trace_out}")
    if args.report:
        _write_run_report(result, f"serve:{result.design_label}", args.report)
        lines.append(f"report written to {args.report}")
    return "\n".join(lines)


def _cmd_fleet(args: argparse.Namespace) -> str:
    from .opt import OptimizationError
    from .serve import SLOSpec
    from .fleet import (
        AutoscalerPolicy,
        DeviceSpec,
        autoscale,
        plan_capacity,
        simulate_fleet,
    )

    try:
        names = _split_network_names(args.networks)
        budget = budget_for(
            args.part,
            bandwidth_gbps=args.bandwidth_gbps,
            frequency_mhz=args.frequency_mhz,
        )
        dtype = DataType.from_name(args.dtype)
        design, tenant_names = _serving_design(args, names, budget, dtype)
        device = DeviceSpec(
            design=design,
            part=args.part,
            bytes_per_cycle=budget.bytes_per_cycle(),
            calibrate=args.calibrate,
        )

        if args.fleet_command == "simulate":
            if args.replicas < 1:
                raise ValueError("--replicas must be at least 1")
            tenants = _tenant_specs(
                args, tenant_names, budget.cycles_per_second
            )
            duration_cycles = _traffic_window_cycles(args, design, budget)
            obs, trace = _obs_spec(args, budget.cycles_per_second)
            result = simulate_fleet(
                device.replicated(args.replicas),
                tenants,
                duration_cycles=duration_cycles,
                balancer=args.balancer,
                frequency_mhz=args.frequency_mhz,
                seed=args.seed,
                queue_depth=args.queue_depth,
                policy=args.policy,
                drain=args.drain,
                scenario=args.scenario,
                engine=args.engine,
                obs=obs,
                overload=_overload_spec(args),
                detector=_detector_spec(args),
            )
            if args.save:
                from .core.serialize import dump_fleet_result

                dump_fleet_result(result, args.save)
            if trace is not None:
                _write_trace(trace, args.trace_out, args.frequency_mhz)
            if args.report:
                _write_run_report(
                    result,
                    f"fleet:{args.balancer}x{args.replicas}",
                    args.report,
                )
            if args.json:
                # Pure JSON on stdout; --save/--trace-out/--report still
                # write their files, silently.
                import json as _json

                from .core.serialize import fleet_result_to_dict

                return _json.dumps(fleet_result_to_dict(result), indent=2)
            lines = [result.format()]
            if args.save:
                lines.append(f"fleet result written to {args.save}")
            if trace is not None:
                lines.append(f"trace written to {args.trace_out}")
            if args.report:
                lines.append(f"report written to {args.report}")
            return "\n".join(lines)

        if args.fleet_command == "plan":
            slo = SLOSpec(
                p99_ms=args.p99_ms,
                max_drop_rate=args.max_drop_rate,
                min_throughput_rps=args.min_throughput,
                deadline_ms=args.deadline_ms,
                min_goodput_rps=args.min_goodput,
            )
            plan = plan_capacity(
                device,
                args.rate,
                slo,
                max_replicas=args.max_replicas,
                duration_ms=args.duration_ms,
                seed=args.seed,
                balancer=args.balancer,
                queue_depth=args.queue_depth,
                policy=args.policy,
                frequency_mhz=args.frequency_mhz,
                scenario=args.scenario,
                redundancy=args.redundancy,
                engine=args.engine,
                overload=_overload_spec(args),
                detector=_detector_spec(args),
            )
            lines = [plan.format()]
            if plan.meets and plan.result is not None:
                lines.append("")
                lines.append(plan.result.format())
            return "\n".join(lines)

        # autoscale
        policy = AutoscalerPolicy(
            min_replicas=args.min_replicas,
            max_replicas=args.max_replicas,
            step=args.step,
            p99_high_ms=args.p99_high_ms,
            queue_high=args.queue_high,
            p99_low_ms=args.p99_low_ms,
            queue_low=args.queue_low,
        )
        recorder = None
        if args.trace_out:
            from .obs import TraceRecorder

            recorder = TraceRecorder()
        trace = autoscale(
            device,
            args.rates,
            policy,
            window_ms=args.window_ms,
            initial_replicas=args.initial_replicas,
            seed=args.seed,
            balancer=args.balancer,
            queue_depth=args.queue_depth,
            drop_policy=args.policy,
            frequency_mhz=args.frequency_mhz,
            scenario=args.scenario,
            engine=args.engine,
            trace=recorder,
            overload=_overload_spec(args),
            detector=_detector_spec(args),
        )
        lines = [trace.format()]
        if recorder is not None:
            _write_trace(recorder, args.trace_out, args.frequency_mhz)
            lines.append(f"trace written to {args.trace_out}")
        if args.report:
            with open(args.report, "w") as handle:
                handle.write(_autoscale_report(trace))
            lines.append(f"report written to {args.report}")
        return "\n".join(lines)
    except (ValueError, OptimizationError) as exc:
        raise SystemExit(
            f"repro fleet {args.fleet_command}: error: {exc}"
        ) from None


def _autoscale_report(trace) -> str:
    """Markdown view of an autoscale trace: text summary + sparklines."""
    from .analysis.report import format_sig, sparkline

    timeseries = trace.to_timeseries()
    lines = [
        "# Autoscale report",
        "",
        "```text",
        trace.format(),
        "```",
        "",
        "## Window series",
        "",
        "```text",
    ]
    width = max(len(name) for name in timeseries.names())
    for name in timeseries.names():
        values = list(timeseries.get(name))
        present = [v for v in values if v is not None]
        if not present:
            stats = "(no samples)"
        elif min(present) == max(present):
            stats = f"= {format_sig(min(present))} (constant)"
        else:
            stats = f"{format_sig(min(present))} .. {format_sig(max(present))}"
        lines.append(f"{name.ljust(width)}  {sparkline(values)}  {stats}")
    lines += ["```", ""]
    return "\n".join(lines)


def _cmd_report(args: argparse.Namespace) -> str:
    from .analysis.report import render_report
    from .serve import SLOSpec

    slo = None
    if (
        args.p99_ms is not None
        or args.max_drop_rate
        or args.min_throughput is not None
    ):
        slo = SLOSpec(
            p99_ms=args.p99_ms,
            max_drop_rate=args.max_drop_rate,
            min_throughput_rps=args.min_throughput,
        )
    try:
        text = render_report(
            args.path, slo=slo, history_path=args.bench_history
        )
    except (ValueError, OSError, KeyError) as exc:
        raise SystemExit(f"repro report: error: {exc}") from None
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        return f"report written to {args.out}"
    return text


def _cmd_scenario(args: argparse.Namespace) -> str:
    import json as _json

    from .core.serialize import scenario_spec_to_dict
    from .scenario import SCENARIO_NAMES, describe_scenario, get_scenario

    if args.scenario_command == "list":
        if args.json:
            return _json.dumps(list(SCENARIO_NAMES))
        width = max(len(name) for name in SCENARIO_NAMES)
        lines = ["Scenario library (use with --scenario NAME):", ""]
        for name in SCENARIO_NAMES:
            spec = get_scenario(name)
            lines.append(f"  {name:<{width}}  {spec.description}")
        return "\n".join(lines)

    # describe
    try:
        spec = get_scenario(args.name)
    except KeyError as exc:
        raise SystemExit(f"repro scenario describe: error: {exc}") from None
    if args.json:
        return _json.dumps(scenario_spec_to_dict(spec), indent=2)
    return describe_scenario(spec)


def _cmd_hls(args: argparse.Namespace) -> str:
    from .hls import generate_system

    network = get_network(args.network)
    dtype = DataType.from_name(args.dtype)
    budget = budget_for(args.part)
    optimize = optimize_single_clp if args.single else optimize_multi_clp
    design = optimize(network, budget, dtype)
    return generate_system(design)


def _parse_budget(text: str) -> tuple:
    try:
        dsp, bram = text.split(":")
        return (int(dsp), int(bram))
    except ValueError:
        raise SystemExit(
            f"bad synthetic budget {text!r}; expected DSP:BRAM, e.g. 1000:800"
        ) from None


def _cmd_dse(args: argparse.Namespace) -> str:
    from .dse import ResultStore, SweepSpec, frontier_table, run_sweep, summary_table

    if args.dse_command == "status":
        return ResultStore(args.store).describe()
    if args.dse_command == "frontier":
        results = ResultStore(args.store).results()
        if not results:
            return f"store {args.store} is empty; run `repro dse sweep` first"
        return frontier_table(
            results, maximize=args.maximize, minimize=args.minimize
        )
    if args.dse_command == "rank":
        from .dse import rank_by_traffic, traffic_rank_table
        from .serve import SLOSpec

        results = ResultStore(args.store).results()
        if not results:
            return f"store {args.store} is empty; run `repro dse sweep` first"
        slo = SLOSpec(
            p99_ms=args.p99_ms,
            max_drop_rate=args.max_drop_rate,
            min_throughput_rps=args.min_throughput,
        )
        rankings = rank_by_traffic(
            results,
            rate_rps=args.rate,
            slo=slo,
            duration_ms=args.duration_ms,
            seed=args.seed,
            process=args.process,
            queue_depth=args.queue_depth,
            policy=args.policy,
        )
        return traffic_rank_table(rankings, rate_rps=args.rate, slo=slo)
    if args.dse_command == "cost":
        from .dse import cost_to_serve_table, rank_by_cost_to_serve
        from .serve import SLOSpec

        results = ResultStore(args.store).results()
        if not results:
            return f"store {args.store} is empty; run `repro dse sweep` first"
        slo = SLOSpec(
            p99_ms=args.p99_ms,
            max_drop_rate=args.max_drop_rate,
            min_throughput_rps=args.min_throughput,
        )
        rankings = rank_by_cost_to_serve(
            results,
            rate_rps=args.rate,
            slo=slo,
            max_replicas=args.max_replicas,
            duration_ms=args.duration_ms,
            seed=args.seed,
            balancer=args.balancer,
            queue_depth=args.queue_depth,
            policy=args.policy,
        )
        return cost_to_serve_table(rankings, rate_rps=args.rate, slo=slo)
    if args.dse_command == "resilience":
        from .dse import rank_by_resilience, resilience_rank_table
        from .serve import SLOSpec

        results = ResultStore(args.store).results()
        if not results:
            return f"store {args.store} is empty; run `repro dse sweep` first"
        slo = SLOSpec(
            p99_ms=args.p99_ms,
            max_drop_rate=args.max_drop_rate,
            min_throughput_rps=args.min_throughput,
        )
        try:
            rankings = rank_by_resilience(
                results,
                rate_rps=args.rate,
                slo=slo,
                scenario=args.scenario,
                replicas=args.replicas,
                duration_ms=args.duration_ms,
                seed=args.seed,
                balancer=args.balancer,
                queue_depth=args.queue_depth,
                policy=args.policy,
            )
        except KeyError as exc:
            raise SystemExit(f"repro dse resilience: error: {exc}") from None
        return resilience_rank_table(
            rankings, rate_rps=args.rate, slo=slo, scenario=args.scenario
        )

    if args.parts is not None:
        parts = tuple(args.parts)
    else:
        parts = () if args.budgets else ("485t", "690t")
    try:
        spec = SweepSpec(
            networks=tuple(args.networks),
            parts=parts,
            budgets=tuple(_parse_budget(b) for b in args.budgets),
            dtypes=tuple(args.dtypes),
            bandwidths_gbps=tuple(args.bandwidths) or (None,),
            frequencies_mhz=(args.frequency_mhz,),
            modes=tuple(args.modes),
            max_clps=tuple(args.max_clps),
            orderings=tuple(args.orderings),
        )
        store = ResultStore(args.store)
        outcome = run_sweep(spec, store=store, workers=args.workers)
    except ValueError as exc:
        raise SystemExit(f"repro dse sweep: error: {exc}") from None
    lines = []
    if not args.quiet:
        lines.append(summary_table(outcome.results))
        lines.append("")
    lines.append(f"sweep: {outcome.format()}")
    lines.append(f"store: {args.store} ({len(store)} points on disk)")
    return "\n".join(lines)


def _cmd_networks(args: argparse.Namespace) -> str:
    if args.network:
        return get_network(args.network).describe()
    return "\n\n".join(
        get_network(name).describe() for name in available_networks()
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    command = args.command
    if command.startswith("table"):
        output = _cmd_tables(args)
    elif command == "fig6":
        output = _cmd_fig6(args)
    elif command == "fig7":
        output = _cmd_fig7(args)
    elif command == "optimize":
        output = _cmd_optimize(args)
    elif command == "gantt":
        output = _cmd_gantt(args)
    elif command == "joint":
        output = _cmd_joint(args)
    elif command == "latency":
        output = _cmd_latency(args)
    elif command == "validate":
        output = _cmd_validate(args)
    elif command == "serve":
        output = _cmd_serve(args)
    elif command == "scenario":
        output = _cmd_scenario(args)
    elif command == "report":
        output = _cmd_report(args)
    elif command == "fleet":
        output = _cmd_fleet(args)
    elif command == "hls":
        output = _cmd_hls(args)
    elif command == "networks":
        output = _cmd_networks(args)
    elif command == "dse":
        output = _cmd_dse(args)
    else:  # pragma: no cover - argparse guards this
        raise SystemExit(f"unknown command {command}")
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
