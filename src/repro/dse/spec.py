"""Declarative sweep specifications.

A :class:`SweepSpec` names the axes of a study — networks, FPGA parts
and/or synthetic DSP·BRAM budgets, datatypes, bandwidth caps, CLP caps,
single/multi mode, layer orderings — and :meth:`SweepSpec.expand`
unrolls the cross-product into concrete :class:`DesignPoint`s in a
deterministic order.  Equivalent points (e.g. single-CLP mode under
different ``max_clps`` caps) collapse to one canonical point, so a spec
never solves the same scenario twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import List, Optional, Tuple

from ..core.datatypes import DataType
from ..fpga.parts import budget_for
from ..networks import get_network
from ..opt.driver import DEFAULT_MAX_CLPS, DEFAULT_SLACK, DEFAULT_STEP
from ..opt.heuristics import get_ordering
from .point import DesignPoint

__all__ = ["SweepSpec"]

_MODES = ("single", "multi")


@dataclass(frozen=True)
class SweepSpec:
    """Axes of a design-space study; the cross-product is the sweep."""

    networks: Tuple[str, ...]
    parts: Tuple[str, ...] = ()
    budgets: Tuple[Tuple[int, int], ...] = ()  # synthetic (dsp, bram18k)
    dtypes: Tuple[str, ...] = ("float32",)
    bandwidths_gbps: Tuple[Optional[float], ...] = (None,)
    frequencies_mhz: Tuple[float, ...] = (100.0,)
    modes: Tuple[str, ...] = ("multi",)
    max_clps: Tuple[int, ...] = (DEFAULT_MAX_CLPS,)
    orderings: Tuple[str, ...] = ("auto",)
    fraction: float = 0.8
    step: float = DEFAULT_STEP
    slack: float = DEFAULT_SLACK

    def __post_init__(self) -> None:
        # Accept any sequences; store canonical tuples.
        for name in (
            "networks", "parts", "budgets", "dtypes", "bandwidths_gbps",
            "frequencies_mhz", "modes", "max_clps", "orderings",
        ):
            value = getattr(self, name)
            if isinstance(value, (str, bytes)):
                raise TypeError(f"{name} must be a sequence, not a bare string")
            object.__setattr__(
                self,
                name,
                tuple(tuple(v) if isinstance(v, (list, tuple)) else v
                      for v in value),
            )
        if not self.networks:
            raise ValueError("a sweep needs at least one network")
        if not self.parts and not self.budgets:
            raise ValueError("a sweep needs FPGA parts or synthetic budgets")
        for mode in self.modes:
            if mode not in _MODES:
                raise ValueError(f"unknown mode {mode!r}; expected {_MODES}")
        for dtype in self.dtypes:
            DataType.from_name(dtype)  # fail fast on typos
        for ordering in self.orderings:
            if ordering != "auto":
                get_ordering(ordering)
        for name in self.networks:
            get_network(name)
        for part in self.parts:
            budget_for(part, fraction=self.fraction)
        for budget in self.budgets:
            if len(budget) != 2 or int(budget[0]) <= 0 or int(budget[1]) <= 0:
                raise ValueError(
                    f"synthetic budget {budget!r} must be a positive "
                    "(dsp, bram18k) pair"
                )
        for cap in self.max_clps:
            if int(cap) < 1:
                raise ValueError(f"max_clps axis value {cap} must be >= 1")

    @property
    def size(self) -> int:
        """Number of distinct points the spec expands to."""
        return len(self.expand())

    def expand(self) -> List[DesignPoint]:
        """Unroll the cross-product into deterministic, deduplicated points."""
        budgets: List[Tuple[Optional[str], int, int]] = []
        for part in self.parts:
            resolved = budget_for(part, fraction=self.fraction)
            budgets.append((part, resolved.dsp, resolved.bram18k))
        for dsp, bram18k in self.budgets:
            budgets.append((None, int(dsp), int(bram18k)))

        points: List[DesignPoint] = []
        seen = set()
        for network, (part, dsp, bram), dtype, bandwidth, freq, mode, cap, \
                ordering in product(
                    self.networks, budgets, self.dtypes, self.bandwidths_gbps,
                    self.frequencies_mhz, self.modes, self.max_clps,
                    self.orderings):
            point = DesignPoint(
                network=network,
                part=part,
                dsp=dsp,
                bram18k=bram,
                dtype=dtype,
                bandwidth_gbps=bandwidth,
                frequency_mhz=freq,
                single=mode == "single",
                max_clps=cap,  # DesignPoint canonicalizes to 1 when single
                ordering=ordering,
                step=self.step,
                slack=self.slack,
            )
            key = point.key()
            if key not in seen:
                seen.add(key)
                points.append(point)
        return points

    def describe(self) -> str:
        axes = [
            f"networks={list(self.networks)}",
            f"budgets={[*self.parts, *self.budgets]}",
            f"dtypes={list(self.dtypes)}",
            f"bandwidths={list(self.bandwidths_gbps)}",
            f"modes={list(self.modes)}",
            f"max_clps={list(self.max_clps)}",
            f"orderings={list(self.orderings)}",
        ]
        return f"SweepSpec({', '.join(axes)}) -> {self.size} points"
