"""On-disk result store: JSON-lines, keyed by stable point hash.

One line per solved point; re-running a sweep against the same store
recomputes only the missing keys, which makes every sweep resumable
(kill it halfway, run again) and incremental (grow the spec, pay only
for the new points).  Append-only writes mean a crash can at worst lose
the final partial line, which the loader skips; duplicate keys resolve
to the last-written record.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from .point import SweepResult

__all__ = ["ResultStore"]


class ResultStore:
    """A dictionary of ``point key -> SweepResult`` persisted as JSONL.

    With ``path=None`` the store is memory-only — same interface, no
    persistence — which the runner uses for throwaway sweeps.
    """

    def __init__(self, path: Union[str, Path, None] = None):
        self.path: Optional[Path] = Path(path) if path is not None else None
        self._records: Dict[str, SweepResult] = {}
        #: Lines dropped on load: torn JSON tails from an interrupted
        #: write, or parseable-but-malformed records (foreign schema,
        #: missing fields).  A store must survive a mid-write kill with
        #: every intact line usable, or sweeps stop being resumable.
        self.skipped_lines = 0
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        with self.path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    result = SweepResult.from_dict(record)
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    # Torn final line from an interrupted run, or a
                    # corrupt/foreign record: count it and keep loading —
                    # one bad line must not cost the rest of the cache.
                    self.skipped_lines += 1
                    continue
                self._records[result.point.key()] = result

    # ------------------------------------------------------------- dict-like
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def get(self, key: str) -> Optional[SweepResult]:
        return self._records.get(key)

    def keys(self) -> Iterable[str]:
        return self._records.keys()

    def results(self) -> List[SweepResult]:
        """All stored results, in insertion (file) order."""
        return list(self._records.values())

    # --------------------------------------------------------------- writing
    def put(self, result: SweepResult) -> None:
        """Record one result, appending to the backing file if any."""
        key = result.point.key()
        self._records[key] = result
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as handle:
                handle.write(json.dumps(result.to_dict()) + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def put_all(self, results: Iterable[SweepResult]) -> None:
        for result in results:
            self.put(result)

    # --------------------------------------------------------------- summary
    def describe(self) -> str:
        ok = sum(1 for r in self._records.values() if r.ok)
        failed = len(self._records) - ok
        networks = sorted({r.point.network for r in self._records.values()})
        where = self.path if self.path is not None else "<memory>"
        skipped = (
            f", {self.skipped_lines} corrupt line(s) skipped"
            if self.skipped_lines
            else ""
        )
        solve_s = sum(r.elapsed_s for r in self._records.values())
        timing = (
            f", {solve_s:.1f}s solve time "
            f"({solve_s / len(self._records):.2f}s/point)"
            if solve_s > 0
            else ""
        )
        return (
            f"store {where}: {len(self._records)} points "
            f"({ok} solved, {failed} infeasible) "
            f"across networks {networks or '[]'}{skipped}{timing}"
        )
