"""Design-space exploration engine: parallel, cached, resumable sweeps.

The paper's whole contribution is a *search* over accelerator design
spaces; this package makes that search a first-class workflow::

    from repro.dse import SweepSpec, run_sweep, pareto_frontier

    spec = SweepSpec(
        networks=("alexnet", "squeezenet"),
        parts=("485t", "690t"),
        dtypes=("float32", "fixed16"),
        modes=("single", "multi"),
    )
    outcome = run_sweep(spec, store="sweep.jsonl")   # parallel across cores
    best = pareto_frontier(outcome.results)           # throughput vs DSPs

Re-running the same call is ~free: the JSONL store is keyed by a stable
hash of each point, so only never-seen points are computed.  Infeasible
points record their ``OptimizationError`` instead of aborting the sweep.
"""

from .analysis import (
    METRIC_NAMES,
    CostToServeRanking,
    ResilienceRanking,
    TrafficRanking,
    best_per_group,
    cost_to_serve_table,
    frontier_table,
    pareto_frontier,
    rank_by_cost_to_serve,
    rank_by_resilience,
    rank_by_traffic,
    resilience_rank_table,
    summary_table,
    traffic_rank_table,
)
from .point import DesignPoint, SweepResult, canonical_json, point_key
from .runner import SweepOutcome, SweepRunner, run_sweep
from .spec import SweepSpec
from .store import ResultStore

__all__ = [
    "DesignPoint",
    "SweepResult",
    "SweepSpec",
    "SweepRunner",
    "SweepOutcome",
    "ResultStore",
    "run_sweep",
    "pareto_frontier",
    "best_per_group",
    "summary_table",
    "frontier_table",
    "TrafficRanking",
    "rank_by_traffic",
    "traffic_rank_table",
    "CostToServeRanking",
    "rank_by_cost_to_serve",
    "cost_to_serve_table",
    "ResilienceRanking",
    "rank_by_resilience",
    "resilience_rank_table",
    "METRIC_NAMES",
    "canonical_json",
    "point_key",
]
