"""Sweep execution: fan design points out across worker processes.

The runner is cache-first: points already present in the store are
served from it, and only the missing ones are dispatched — serially for
tiny batches or single-core boxes, otherwise on a
``ProcessPoolExecutor`` running :func:`repro.opt.worker.
evaluate_point_payload` (a plain top-level function, picklable by
reference).  ``executor.map`` preserves submission order, so results
come back in the expansion order of the spec regardless of which worker
finished first — sweeps are deterministic by construction.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.serialize import network_to_dict
from ..networks import get_network
from ..opt.worker import evaluate_point_payload
from .point import DesignPoint, SweepResult
from .spec import SweepSpec
from .store import ResultStore

__all__ = ["SweepRunner", "SweepOutcome", "run_sweep"]


@dataclass(frozen=True)
class SweepOutcome:
    """Everything a sweep produced, in deterministic point order."""

    results: Tuple[SweepResult, ...]
    computed: int
    cached: int
    workers: int
    #: Wall-clock seconds for the whole run() call, and the sum of the
    #: workers' per-point solve times.  solve_s > wall_s means the pool
    #: parallelism paid off; a large wall/solve gap on a cached sweep is
    #: store-load overhead.  Both default to 0.0 so pre-profiling
    #: constructors (and tests) stay valid.
    wall_s: float = 0.0
    solve_s: float = 0.0

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def infeasible(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    def ok_results(self) -> List[SweepResult]:
        return [r for r in self.results if r.ok]

    @property
    def cache_hit_rate(self) -> float:
        return self.cached / self.total if self.total else 0.0

    def format(self) -> str:
        line = (
            f"{self.total} points: {self.computed} computed, "
            f"{self.cached} cached ({self.cache_hit_rate:.0%} hits), "
            f"{self.infeasible} infeasible, {self.workers} worker(s)"
        )
        if self.wall_s > 0:
            line += f"; {self.wall_s:.2f}s wall, {self.solve_s:.2f}s solving"
        return line


class SweepRunner:
    """Executes sweeps against a result store with a process pool.

    ``workers=None`` picks the CPU count; ``workers=1`` (or a one-point
    batch) runs in-process, which keeps tracebacks simple and avoids
    pool startup cost where parallelism cannot pay for itself.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: Optional[int] = None,
    ):
        self.store = store if store is not None else ResultStore()
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers

    def run(
        self,
        spec: Union[SweepSpec, Sequence[DesignPoint]],
        progress: Optional[Callable[[SweepResult], None]] = None,
    ) -> SweepOutcome:
        """Solve every point of ``spec`` not already in the store."""
        started = time.perf_counter()
        points = spec.expand() if isinstance(spec, SweepSpec) else list(spec)
        missing: List[DesignPoint] = []
        queued = set()
        cached = 0  # occurrences served by the pre-existing store
        for point in points:
            key = point.key()
            if key in self.store:
                cached += 1
            elif key not in queued:
                queued.add(key)
                missing.append(point)

        # One serialized network per name, shared by all its points.
        networks: Dict[str, Dict[str, Any]] = {}
        for point in missing:
            if point.network not in networks:
                networks[point.network] = network_to_dict(
                    get_network(point.network)
                )
        payloads = [
            {"point": p.to_dict(), "network": networks[p.network]}
            for p in missing
        ]

        workers = self.workers or os.cpu_count() or 1
        workers = max(1, min(workers, len(payloads) or 1))
        if workers == 1:
            records = map(evaluate_point_payload, payloads)
            self._collect(records, progress)
        else:
            chunksize = max(1, len(payloads) // (workers * 4))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                records = pool.map(
                    evaluate_point_payload, payloads, chunksize=chunksize
                )
                self._collect(records, progress)

        results = []
        for point in points:
            result = self.store.get(point.key())
            assert result is not None  # every point was cached or computed
            results.append(result)
        solve_s = sum(self.store.get(p.key()).elapsed_s for p in missing)
        return SweepOutcome(
            results=tuple(results),
            computed=len(missing),
            cached=cached,
            workers=workers,
            wall_s=time.perf_counter() - started,
            solve_s=solve_s,
        )

    def _collect(
        self,
        records: Any,
        progress: Optional[Callable[[SweepResult], None]],
    ) -> None:
        for record in records:
            result = SweepResult.from_worker_record(record)
            self.store.put(result)
            if progress is not None:
                progress(result)


def run_sweep(
    spec: Union[SweepSpec, Sequence[DesignPoint]],
    store: Union[ResultStore, str, None] = None,
    workers: Optional[int] = None,
    progress: Optional[Callable[[SweepResult], None]] = None,
) -> SweepOutcome:
    """One-call sweep: expand, solve what's missing, return everything.

    ``store`` may be a :class:`ResultStore`, a path to one, or ``None``
    for a memory-only run.
    """
    if not isinstance(store, (ResultStore, type(None))):
        store = ResultStore(store)
    return SweepRunner(store=store, workers=workers).run(spec, progress=progress)
