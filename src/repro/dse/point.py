"""Design points and sweep results: the records a sweep is made of.

A :class:`DesignPoint` pins every input of one optimizer run — network,
resolved resource budget, datatype, and optimizer settings — as a
frozen, hashable value object.  Its :meth:`DesignPoint.key` is a SHA-256
digest of the canonical JSON record, so the same point hashes to the
same key in every process and on every machine; that key is what makes
the on-disk result store resumable and incremental.

A :class:`SweepResult` wraps the worker's output for one point: either
the solved design's headline metrics (plus enough CLP detail to rebuild
the full :class:`~repro.core.design.MultiCLPDesign`) or the captured
optimization error for an infeasible point.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..core.datatypes import DataType
from ..core.design import MultiCLPDesign
from ..core.network import Network
from ..core.serialize import budget_from_dict, budget_to_dict, clp_from_dict
from ..fpga.parts import ResourceBudget, budget_for
from ..opt.driver import DEFAULT_MAX_CLPS, DEFAULT_SLACK, DEFAULT_STEP
from ..opt.heuristics import get_ordering
from ..opt.worker import RESULT_SCHEMA_VERSION

__all__ = [
    "DesignPoint",
    "SweepResult",
    "canonical_json",
    "point_key",
    "METRIC_NAMES",
]

#: Short metric names accepted by :meth:`SweepResult.metric` (and hence
#: by the Pareto/grouping helpers in :mod:`repro.dse.analysis`).
METRIC_NAMES = (
    "throughput", "utilization", "dsp", "bram", "bandwidth",
    "epoch_cycles", "num_clps", "gflops",
)


def canonical_json(record: Dict[str, Any]) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def point_key(record: Dict[str, Any]) -> str:
    """Stable hash of a point record (process- and machine-independent)."""
    return hashlib.sha256(canonical_json(record).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class DesignPoint:
    """One fully-specified optimizer scenario in a sweep.

    The budget is stored *resolved* (DSP/BRAM counts, not an FPGA part
    name), so a point means the same thing even if the part catalog or
    budget fraction changes later; ``part`` is kept as a human label.
    """

    network: str
    dsp: int
    bram18k: int
    dtype: str = "float32"
    part: Optional[str] = None
    bandwidth_gbps: Optional[float] = None
    frequency_mhz: float = 100.0
    single: bool = False
    max_clps: int = DEFAULT_MAX_CLPS
    ordering: str = "auto"
    step: float = DEFAULT_STEP
    slack: float = DEFAULT_SLACK

    def __post_init__(self) -> None:
        # Canonicalize numeric types: the key is a hash of the JSON record,
        # and json renders 170 and 170.0 differently — an int-typed
        # frequency must hash identically to its float round-trip.
        object.__setattr__(self, "dsp", int(self.dsp))
        object.__setattr__(self, "bram18k", int(self.bram18k))
        object.__setattr__(self, "max_clps", int(self.max_clps))
        object.__setattr__(self, "frequency_mhz", float(self.frequency_mhz))
        object.__setattr__(self, "step", float(self.step))
        object.__setattr__(self, "slack", float(self.slack))
        object.__setattr__(self, "single", bool(self.single))
        if self.single:
            # A single-CLP run ignores the cap; canonicalize so the same
            # scenario hashes to one store key whatever cap it came with.
            object.__setattr__(self, "max_clps", 1)
        if self.bandwidth_gbps is not None:
            object.__setattr__(
                self, "bandwidth_gbps", float(self.bandwidth_gbps)
            )
        if self.dsp <= 0 or self.bram18k <= 0:
            raise ValueError("design point needs positive DSP and BRAM budgets")
        if self.max_clps < 1:
            raise ValueError("max_clps must be at least 1")
        DataType.from_name(self.dtype)  # validate early, not in the worker
        if self.ordering != "auto":
            get_ordering(self.ordering)  # unknown ordering fails here, loudly

    @classmethod
    def build(
        cls,
        network: str,
        part: Optional[str] = None,
        dsp: Optional[int] = None,
        bram18k: Optional[int] = None,
        fraction: float = 0.8,
        **kwargs: Any,
    ) -> "DesignPoint":
        """Make a point from either a catalog part or a synthetic budget.

        Exactly one of ``part`` or the ``dsp``/``bram18k`` pair must be
        given; a part is resolved through the paper's budget fraction.
        """
        if part is not None:
            if dsp is not None or bram18k is not None:
                raise ValueError("give either part or dsp/bram18k, not both")
            budget = budget_for(part, fraction=fraction)
            dsp, bram18k = budget.dsp, budget.bram18k
        elif dsp is None or bram18k is None:
            raise ValueError("a synthetic budget needs both dsp and bram18k")
        return cls(network=network, part=part, dsp=dsp, bram18k=bram18k, **kwargs)

    @property
    def budget_label(self) -> str:
        """Human-readable budget: the part name or the raw counts."""
        if self.part is not None:
            return self.part
        return f"{self.dsp}dsp/{self.bram18k}bram"

    @property
    def mode(self) -> str:
        return "single" if self.single else "multi"

    def budget(self) -> ResourceBudget:
        return ResourceBudget(
            dsp=self.dsp,
            bram18k=self.bram18k,
            bandwidth_gbps=self.bandwidth_gbps,
            frequency_mhz=self.frequency_mhz,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "network": self.network,
            "part": self.part,
            "budget": budget_to_dict(self.budget()),
            "dtype": self.dtype,
            "single": self.single,
            "max_clps": self.max_clps,
            "ordering": self.ordering,
            "step": self.step,
            "slack": self.slack,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "DesignPoint":
        budget = budget_from_dict(record["budget"])
        return cls(
            network=record["network"],
            part=record.get("part"),
            dsp=budget.dsp,
            bram18k=budget.bram18k,
            dtype=record["dtype"],
            bandwidth_gbps=budget.bandwidth_gbps,
            frequency_mhz=budget.frequency_mhz,
            single=bool(record["single"]),
            max_clps=int(record["max_clps"]),
            ordering=record["ordering"],
            step=float(record["step"]),
            slack=float(record["slack"]),
        )

    def key(self) -> str:
        """Stable identity of this point in a result store."""
        return point_key(self.to_dict())


@dataclass(frozen=True)
class SweepResult:
    """The outcome of solving one design point."""

    point: DesignPoint
    ok: bool
    metrics: Optional[Dict[str, Any]] = None
    optimizer: Optional[Dict[str, Any]] = None
    clps: Tuple[Dict[str, Any], ...] = ()
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    elapsed_s: float = 0.0

    def metric(self, name: str) -> Optional[float]:
        """Metric lookup by short name (used by Pareto/grouping helpers)."""
        if not self.ok or self.metrics is None:
            return None
        aliases = {
            "throughput": "throughput_images_per_s",
            "utilization": "arithmetic_utilization",
            "bandwidth": "required_bandwidth_gbps",
        }
        return self.metrics.get(aliases.get(name, name))

    def design(self, network: Network) -> MultiCLPDesign:
        """Rebuild the full design against the point's network."""
        if not self.ok:
            raise ValueError(
                f"point {self.point.key()[:12]} has no design: "
                f"{self.error_type}: {self.error_message}"
            )
        dtype = DataType.from_name(self.point.dtype)
        return MultiCLPDesign(
            network=network,
            clps=[clp_from_dict(record, network, dtype) for record in self.clps],
            dtype=dtype,
        )

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "schema": RESULT_SCHEMA_VERSION,
            "key": self.point.key(),
            "point": self.point.to_dict(),
            "ok": self.ok,
            "elapsed_s": self.elapsed_s,
        }
        if self.ok:
            record["metrics"] = self.metrics
            record["optimizer"] = self.optimizer
            record["clps"] = list(self.clps)
        else:
            record["error"] = {
                "type": self.error_type,
                "message": self.error_message,
            }
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "SweepResult":
        schema = record.get("schema", RESULT_SCHEMA_VERSION)
        if schema != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported sweep-result schema {schema!r}; "
                f"expected {RESULT_SCHEMA_VERSION}"
            )
        point = DesignPoint.from_dict(record["point"])
        if record["ok"]:
            return cls(
                point=point,
                ok=True,
                metrics=record["metrics"],
                optimizer=record.get("optimizer"),
                clps=tuple(record.get("clps", ())),
                elapsed_s=float(record.get("elapsed_s", 0.0)),
            )
        error = record.get("error", {})
        return cls(
            point=point,
            ok=False,
            error_type=error.get("type"),
            error_message=error.get("message"),
            elapsed_s=float(record.get("elapsed_s", 0.0)),
        )

    @classmethod
    def from_worker_record(cls, record: Dict[str, Any]) -> "SweepResult":
        """Adapt :func:`repro.opt.worker.evaluate_point_payload` output."""
        return cls.from_dict(record)
