"""Analysis of sweep results: Pareto frontiers, winners, and tables.

The optimizer answers "what is the best design for THIS budget"; these
helpers answer the questions a sweep exists for — which designs are
Pareto-optimal across the whole space (throughput vs. DSPs, BRAM, or
bandwidth), which configuration wins per network/device group, and what
does the study look like as a table.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..analysis.report import render_table
from .point import METRIC_NAMES, SweepResult

__all__ = [
    "METRIC_NAMES",
    "pareto_frontier",
    "best_per_group",
    "summary_table",
    "frontier_table",
]

#: Axes where smaller is better when used as an objective.
_COST_METRICS = {"dsp", "bram", "bandwidth", "epoch_cycles", "num_clps"}


def _check_metric(name: str) -> str:
    if name not in METRIC_NAMES:
        raise ValueError(
            f"unknown metric {name!r}; known: {', '.join(METRIC_NAMES)}"
        )
    return name


def _objective_values(
    result: SweepResult, maximize: Sequence[str], minimize: Sequence[str]
) -> Tuple[float, ...]:
    """Objectives as a uniform maximize-vector (costs negated)."""
    values = []
    for name, sign in [(n, 1.0) for n in maximize] + [(n, -1.0) for n in minimize]:
        value = result.metric(name)
        if value is None:
            raise ValueError(
                f"result {result.point.key()[:12]} has no metric {name!r}"
                " (corrupt or foreign store record?)"
            )
        values.append(sign * float(value))
    return tuple(values)


def pareto_frontier(
    results: Iterable[SweepResult],
    maximize: Sequence[str] = ("throughput",),
    minimize: Sequence[str] = ("dsp",),
) -> List[SweepResult]:
    """Non-dominated solved points under the given objectives.

    A point is dominated when another is at least as good on every
    objective and strictly better on one.  Infeasible points never make
    the frontier.  The result keeps sweep order.
    """
    for name in (*maximize, *minimize):
        _check_metric(name)
    solved = [r for r in results if r.ok]
    vectors = [_objective_values(r, maximize, minimize) for r in solved]
    frontier: List[SweepResult] = []
    for i, candidate in enumerate(vectors):
        dominated = False
        for j, other in enumerate(vectors):
            if j == i:
                continue
            if all(o >= c for o, c in zip(other, candidate)) and other != candidate:
                dominated = True
                break
        if not dominated:
            frontier.append(solved[i])
    return frontier


def best_per_group(
    results: Iterable[SweepResult],
    by: Sequence[str] = ("network", "dtype"),
    key: str = "throughput",
) -> Dict[Tuple, SweepResult]:
    """Highest-``key`` solved point per group of point attributes.

    ``by`` names DesignPoint attributes (e.g. ``("network", "part")``);
    cost metrics like ``dsp`` select the *lowest* value instead.
    """
    _check_metric(key)
    pick_min = key in _COST_METRICS
    winners: Dict[Tuple, SweepResult] = {}
    for result in results:
        if not result.ok:
            continue
        group = tuple(getattr(result.point, attr) for attr in by)
        value = result.metric(key)
        incumbent = winners.get(group)
        if incumbent is None:
            winners[group] = result
            continue
        best = incumbent.metric(key)
        if (value < best) if pick_min else (value > best):
            winners[group] = result
    return winners


_SUMMARY_HEADERS = (
    "network", "budget", "dtype", "mode", "b/w cap", "CLPs",
    "img/s", "util", "DSP", "BRAM", "need GB/s", "status",
)


def _summary_row(result: SweepResult) -> Tuple:
    point = result.point
    cap = f"{point.bandwidth_gbps:g}" if point.bandwidth_gbps else "-"
    if not result.ok:
        return (
            point.network, point.budget_label, point.dtype, point.mode,
            cap, "-", "-", "-", "-", "-", "-",
            f"infeasible: {result.error_type}",
        )
    return (
        point.network,
        point.budget_label,
        point.dtype,
        point.mode,
        cap,
        result.metrics["num_clps"],
        f"{result.metrics['throughput_images_per_s']:.1f}",
        f"{result.metrics['arithmetic_utilization']:.1%}",
        result.metrics["dsp"],
        result.metrics["bram"],
        f"{result.metrics['required_bandwidth_gbps']:.2f}",
        "ok",
    )


def summary_table(
    results: Iterable[SweepResult], title: str = "Design-space sweep"
) -> str:
    """All results as a fixed-width table (sweep order)."""
    return render_table(
        _SUMMARY_HEADERS, [_summary_row(r) for r in results], title=title
    )


def frontier_table(
    results: Iterable[SweepResult],
    maximize: Sequence[str] = ("throughput",),
    minimize: Sequence[str] = ("dsp",),
) -> str:
    """The Pareto frontier rendered as a table."""
    frontier = pareto_frontier(results, maximize=maximize, minimize=minimize)
    title = (
        f"Pareto frontier: max({', '.join(maximize)}) "
        f"vs min({', '.join(minimize)}) -- {len(frontier)} points"
    )
    return render_table(
        _SUMMARY_HEADERS, [_summary_row(r) for r in frontier], title=title
    )
