"""Analysis of sweep results: Pareto frontiers, winners, and tables.

The optimizer answers "what is the best design for THIS budget"; these
helpers answer the questions a sweep exists for — which designs are
Pareto-optimal across the whole space (throughput vs. DSPs, BRAM, or
bandwidth), which configuration wins per network/device group, and what
does the study look like as a table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.report import render_table
from .point import METRIC_NAMES, SweepResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..fleet.metrics import FleetResult
    from ..fleet.planner import CapacityPlan
    from ..serve.metrics import ServeResult
    from ..serve.slo import SLOReport, SLOSpec

__all__ = [
    "METRIC_NAMES",
    "pareto_frontier",
    "best_per_group",
    "summary_table",
    "frontier_table",
    "TrafficRanking",
    "rank_by_traffic",
    "traffic_rank_table",
    "CostToServeRanking",
    "rank_by_cost_to_serve",
    "cost_to_serve_table",
    "ResilienceRanking",
    "rank_by_resilience",
    "resilience_rank_table",
]

#: Axes where smaller is better when used as an objective.
_COST_METRICS = {"dsp", "bram", "bandwidth", "epoch_cycles", "num_clps"}


def _check_metric(name: str) -> str:
    if name not in METRIC_NAMES:
        raise ValueError(
            f"unknown metric {name!r}; known: {', '.join(METRIC_NAMES)}"
        )
    return name


def _objective_values(
    result: SweepResult, maximize: Sequence[str], minimize: Sequence[str]
) -> Tuple[float, ...]:
    """Objectives as a uniform maximize-vector (costs negated)."""
    values = []
    for name, sign in [(n, 1.0) for n in maximize] + [(n, -1.0) for n in minimize]:
        value = result.metric(name)
        if value is None:
            raise ValueError(
                f"result {result.point.key()[:12]} has no metric {name!r}"
                " (corrupt or foreign store record?)"
            )
        values.append(sign * float(value))
    return tuple(values)


def pareto_frontier(
    results: Iterable[SweepResult],
    maximize: Sequence[str] = ("throughput",),
    minimize: Sequence[str] = ("dsp",),
) -> List[SweepResult]:
    """Non-dominated solved points under the given objectives.

    A point is dominated when another is at least as good on every
    objective and strictly better on one.  Infeasible points never make
    the frontier.  The result keeps sweep order.
    """
    for name in (*maximize, *minimize):
        _check_metric(name)
    solved = [r for r in results if r.ok]
    vectors = [_objective_values(r, maximize, minimize) for r in solved]
    frontier: List[SweepResult] = []
    for i, candidate in enumerate(vectors):
        dominated = False
        for j, other in enumerate(vectors):
            if j == i:
                continue
            if all(o >= c for o, c in zip(other, candidate)) and other != candidate:
                dominated = True
                break
        if not dominated:
            frontier.append(solved[i])
    return frontier


def best_per_group(
    results: Iterable[SweepResult],
    by: Sequence[str] = ("network", "dtype"),
    key: str = "throughput",
) -> Dict[Tuple, SweepResult]:
    """Highest-``key`` solved point per group of point attributes.

    ``by`` names DesignPoint attributes (e.g. ``("network", "part")``);
    cost metrics like ``dsp`` select the *lowest* value instead.
    """
    _check_metric(key)
    pick_min = key in _COST_METRICS
    winners: Dict[Tuple, SweepResult] = {}
    for result in results:
        if not result.ok:
            continue
        group = tuple(getattr(result.point, attr) for attr in by)
        value = result.metric(key)
        incumbent = winners.get(group)
        if incumbent is None:
            winners[group] = result
            continue
        best = incumbent.metric(key)
        if (value < best) if pick_min else (value > best):
            winners[group] = result
    return winners


_SUMMARY_HEADERS = (
    "network", "budget", "dtype", "mode", "b/w cap", "CLPs",
    "img/s", "util", "DSP", "BRAM", "need GB/s", "status",
)


def _summary_row(result: SweepResult) -> Tuple:
    point = result.point
    cap = f"{point.bandwidth_gbps:g}" if point.bandwidth_gbps else "-"
    if not result.ok:
        return (
            point.network, point.budget_label, point.dtype, point.mode,
            cap, "-", "-", "-", "-", "-", "-",
            f"infeasible: {result.error_type}",
        )
    return (
        point.network,
        point.budget_label,
        point.dtype,
        point.mode,
        cap,
        result.metrics["num_clps"],
        f"{result.metrics['throughput_images_per_s']:.1f}",
        f"{result.metrics['arithmetic_utilization']:.1%}",
        result.metrics["dsp"],
        result.metrics["bram"],
        f"{result.metrics['required_bandwidth_gbps']:.2f}",
        "ok",
    )


def summary_table(
    results: Iterable[SweepResult], title: str = "Design-space sweep"
) -> str:
    """All results as a fixed-width table (sweep order)."""
    return render_table(
        _SUMMARY_HEADERS, [_summary_row(r) for r in results], title=title
    )


@dataclass(frozen=True)
class TrafficRanking:
    """One stored design scored under a concrete traffic scenario."""

    result: SweepResult
    serve: "ServeResult"
    report: "SLOReport"

    @property
    def sort_key(self) -> Tuple:
        """Meets-SLO first, then attainment, tail latency, and goodput.

        Tail latency outranks goodput: designs that all meet the SLO
        serve (nearly) the whole offered load, so their goodput differs
        only by sampling noise of the drained window, while p99 is the
        real discriminator.  Goodput still breaks p99 ties at overload.
        """
        p99 = self.report.worst_p99_ms
        return (
            0 if self.report.meets else 1,
            -self.report.attainment,
            p99 if p99 is not None else float("inf"),
            -self.report.total_goodput_rps,
        )


def rank_by_traffic(
    results: Iterable[SweepResult],
    rate_rps: float,
    slo: "SLOSpec",
    duration_ms: float = 200.0,
    seed: int = 0,
    process: str = "poisson",
    queue_depth: int = 64,
    policy: str = "drop-tail",
) -> List[TrafficRanking]:
    """Rank solved sweep points by SLO attainment under real traffic.

    This is the "best design for this traffic mix" objective: every
    solved point is rebuilt into a full design, load-tested with a
    seeded ``process`` stream at ``rate_rps``, and scored against
    ``slo`` — so a sweep can pick the accelerator that actually *serves*
    a workload (tail latency, drops) rather than the one with the best
    steady-state epoch throughput.  Points from the same store solved at
    different clocks are simulated at their own ``frequency_mhz``.

    Runs are *drained* and the horizon is floored at a few pipeline
    latencies: a deep general-schedule pipeline (depth = layer count)
    can exceed a short wall-clock window, and a non-drained run would
    then report zero completions for every candidate, collapsing the
    ranking.
    """
    from ..networks import get_network
    from ..serve import (
        TenantSpec,
        evaluate_slo,
        make_arrival_process,
        pipeline_latency_cycles,
        simulate_traffic,
    )

    rankings: List[TrafficRanking] = []
    for result in results:
        if not result.ok:
            continue
        point = result.point
        network = get_network(point.network)
        design = result.design(network)
        cycles_per_second = point.frequency_mhz * 1e6
        spec = TenantSpec(
            name=network.name,
            process=make_arrival_process(process, rate_rps / cycles_per_second),
        )
        bytes_per_cycle = point.budget().bytes_per_cycle()
        duration_cycles = max(
            duration_ms * 1e-3 * cycles_per_second,
            3.0 * pipeline_latency_cycles(design, bytes_per_cycle),
        )
        serve = simulate_traffic(
            design,
            [spec],
            duration_cycles=duration_cycles,
            frequency_mhz=point.frequency_mhz,
            seed=seed,
            queue_depth=queue_depth,
            policy=policy,
            bytes_per_cycle=bytes_per_cycle,
            drain=True,
        )
        rankings.append(
            TrafficRanking(
                result=result, serve=serve, report=evaluate_slo(serve, slo)
            )
        )
    rankings.sort(key=lambda ranking: ranking.sort_key)
    return rankings


def traffic_rank_table(
    rankings: Sequence[TrafficRanking], rate_rps: float, slo: "SLOSpec"
) -> str:
    """SLO ranking rendered as a table (best design first)."""
    rows = []
    for rank, entry in enumerate(rankings, start=1):
        point = entry.result.point
        p99 = entry.report.worst_p99_ms
        rows.append(
            (
                rank,
                point.network,
                point.budget_label,
                point.dtype,
                point.mode,
                entry.serve.num_clps,
                f"{entry.report.total_goodput_rps:.1f}",
                "-" if p99 is None else f"{p99:.2f}",
                f"{entry.report.worst_shed_rate:.1%}",
                "yes" if entry.report.meets else "NO",
            )
        )
    clauses = []
    if slo.p99_ms is not None:
        clauses.append(f"p99<={slo.p99_ms:g}ms")
    clauses.append(f"drops<={slo.max_drop_rate:.0%}")
    if slo.min_throughput_rps is not None:
        clauses.append(f"goodput>={slo.min_throughput_rps:g}r/s")
    return render_table(
        (
            "#", "network", "budget", "dtype", "mode", "CLPs",
            "goodput r/s", "p99 ms", "shed", "meets SLO",
        ),
        rows,
        title=(
            f"SLO ranking @ {rate_rps:g} r/s ({', '.join(clauses)}) "
            f"-- {len(rankings)} designs"
        ),
    )


def _board_cost(point) -> float:
    """Relative price of one board for a design point.

    Catalog parts carry explicit cost metadata
    (:attr:`repro.fpga.parts.FpgaPart.cost_weight`); synthetic budgets
    fall back to a DSP-proportional estimate anchored so a 485T-sized
    budget (2,240 DSP at the paper's 80% fraction) weighs 1.0.
    """
    if point.part is not None:
        from ..fpga.parts import get_part

        return get_part(point.part).cost_weight
    return point.dsp / 2240.0


@dataclass(frozen=True)
class CostToServeRanking:
    """One stored design priced out as a fleet meeting an SLO."""

    result: SweepResult
    plan: "CapacityPlan"
    board_cost: float

    @property
    def boards(self) -> Optional[int]:
        return self.plan.replicas

    @property
    def total_cost(self) -> Optional[float]:
        """Boards needed x relative board price; None when SLO unmet."""
        if self.plan.replicas is None:
            return None
        return self.plan.replicas * self.board_cost

    @property
    def sort_key(self) -> Tuple:
        """Feasible fleets first, then cheapest, then smallest, then p99.

        Per-board SLO attainment (``rank_by_traffic``) rewards the
        biggest board; cost-to-serve instead asks what the whole service
        costs, so a cheap board that needs two replicas can beat an
        expensive one that needs one.
        """
        cost = self.total_cost
        p99 = self.plan.report.worst_p99_ms if self.plan.report else None
        return (
            0 if cost is not None else 1,
            cost if cost is not None else float("inf"),
            self.boards if self.boards is not None else float("inf"),
            p99 if p99 is not None else float("inf"),
        )


def rank_by_cost_to_serve(
    results: Iterable[SweepResult],
    rate_rps: float,
    slo: "SLOSpec",
    *,
    max_replicas: int = 32,
    duration_ms: float = 100.0,
    seed: int = 0,
    balancer: str = "least-outstanding",
    queue_depth: int = 64,
    policy: str = "drop-tail",
) -> List["CostToServeRanking"]:
    """Rank solved sweep points by fleet cost to meet an SLO.

    For every solved point the design is rebuilt, capacity-planned via
    :func:`repro.fleet.planner.plan_capacity` (minimum replicas whose
    simulated fleet meets ``slo`` at ``rate_rps``), and priced as
    boards-needed x relative board cost.  This is the provisioning
    objective the fleet layer exists for: not "which single board
    attains the SLO" but "which design serves this workload cheapest at
    scale".  Designs that cannot meet the SLO within ``max_replicas``
    boards sort last (by tail latency).
    """
    from ..fleet import DeviceSpec, plan_capacity
    from ..networks import get_network

    rankings: List[CostToServeRanking] = []
    for result in results:
        if not result.ok:
            continue
        point = result.point
        network = get_network(point.network)
        device = DeviceSpec(
            design=result.design(network),
            part=point.part,
            bytes_per_cycle=point.budget().bytes_per_cycle(),
        )
        plan = plan_capacity(
            device,
            rate_rps,
            slo,
            max_replicas=max_replicas,
            duration_ms=duration_ms,
            seed=seed,
            balancer=balancer,
            queue_depth=queue_depth,
            policy=policy,
            frequency_mhz=point.frequency_mhz,
        )
        rankings.append(
            CostToServeRanking(
                result=result, plan=plan, board_cost=_board_cost(point)
            )
        )
    rankings.sort(key=lambda ranking: ranking.sort_key)
    return rankings


def cost_to_serve_table(
    rankings: Sequence["CostToServeRanking"], rate_rps: float, slo: "SLOSpec"
) -> str:
    """Cost-to-serve ranking rendered as a table (cheapest fleet first)."""
    rows = []
    for rank, entry in enumerate(rankings, start=1):
        point = entry.result.point
        p99 = entry.plan.report.worst_p99_ms if entry.plan.report else None
        rows.append(
            (
                rank,
                point.network,
                point.budget_label,
                point.dtype,
                point.mode,
                "-" if entry.boards is None else entry.boards,
                f"{entry.board_cost:.2f}",
                (
                    f"{entry.total_cost:.2f}"
                    if entry.total_cost is not None
                    else f">{entry.plan.max_replicas * entry.board_cost:.2f}"
                ),
                "-" if p99 is None else f"{p99:.2f}",
                "yes" if entry.plan.meets else "NO",
            )
        )
    clauses = []
    if slo.p99_ms is not None:
        clauses.append(f"p99<={slo.p99_ms:g}ms")
    clauses.append(f"drops<={slo.max_drop_rate:.0%}")
    if slo.min_throughput_rps is not None:
        clauses.append(f"goodput>={slo.min_throughput_rps:g}r/s")
    return render_table(
        (
            "#", "network", "budget", "dtype", "mode", "boards",
            "board cost", "fleet cost", "p99 ms", "meets SLO",
        ),
        rows,
        title=(
            f"cost-to-serve @ {rate_rps:g} r/s ({', '.join(clauses)}) "
            f"-- {len(rankings)} designs"
        ),
    )


@dataclass(frozen=True)
class ResilienceRanking:
    """One stored design drilled as a fixed-size fleet under a scenario."""

    result: SweepResult
    fleet: "FleetResult"
    report: "SLOReport"

    @property
    def during_p99_ms(self) -> Optional[float]:
        """Tail latency inside the scenario's incident windows."""
        resilience = self.fleet.resilience
        if resilience is None or resilience.during.p99_cycles is None:
            return None
        return self.fleet.cycles_to_ms(resilience.during.p99_cycles)

    @property
    def sort_key(self) -> Tuple:
        """Meets-SLO-through-the-drill first, then in-incident p99,
        then fewest lost requests, then goodput.

        The discriminator is deliberately the *in-incident* tail, not
        the run-wide one: two designs that both survive a rack loss on
        paper can differ 3x in what clients experienced while the rack
        was down, and the run-wide percentile averages that away.
        """
        p99 = self.during_p99_ms
        return (
            0 if self.report.meets else 1,
            -self.report.attainment,
            p99 if p99 is not None else float("inf"),
            self.fleet.total_lost,
            -self.report.total_goodput_rps,
        )


def rank_by_resilience(
    results: Iterable[SweepResult],
    rate_rps: float,
    slo: "SLOSpec",
    *,
    scenario: str = "rack-loss",
    replicas: int = 4,
    duration_ms: float = 100.0,
    seed: int = 0,
    balancer: str = "least-outstanding",
    queue_depth: int = 64,
    policy: str = "drop-tail",
) -> List["ResilienceRanking"]:
    """Rank solved sweep points by SLO attainment *through* a drill.

    Every solved point becomes a ``replicas``-board fleet run under the
    named scenario (same size for all candidates — this ranks designs,
    not fleet budgets) and is scored against ``slo`` over the whole run,
    losses included.  The throughput-per-board winner is not
    automatically the resilience winner: a deeper pipeline holds more
    in-flight work per board, so each board it loses to the drill takes
    more requests down with it and its recovery backlog drains slower.

    Remember that a fault drill puts a floor under the shed rate, so
    rank with ``slo.max_drop_rate`` above that floor (see
    :func:`repro.fleet.plan_capacity`'s note).
    """
    from ..fleet import DeviceSpec, simulate_fleet
    from ..networks import get_network
    from ..serve import TenantSpec, evaluate_slo, make_arrival_process
    from ..serve.simulator import pipeline_latency_cycles

    rankings: List[ResilienceRanking] = []
    for result in results:
        if not result.ok:
            continue
        point = result.point
        network = get_network(point.network)
        device = DeviceSpec(
            design=result.design(network),
            part=point.part,
            bytes_per_cycle=point.budget().bytes_per_cycle(),
        )
        cycles_per_second = point.frequency_mhz * 1e6
        spec = TenantSpec(
            name=network.name,
            process=make_arrival_process(
                "poisson", rate_rps / cycles_per_second
            ),
        )
        duration_cycles = max(
            duration_ms * 1e-3 * cycles_per_second,
            3.0 * pipeline_latency_cycles(
                device.design, device.bytes_per_cycle
            ),
        )
        fleet = simulate_fleet(
            device.replicated(replicas),
            [spec],
            duration_cycles=duration_cycles,
            balancer=balancer,
            frequency_mhz=point.frequency_mhz,
            seed=seed,
            queue_depth=queue_depth,
            policy=policy,
            drain=True,
            scenario=scenario,
        )
        rankings.append(
            ResilienceRanking(
                result=result,
                fleet=fleet,
                report=evaluate_slo(fleet, slo),
            )
        )
    rankings.sort(key=lambda ranking: ranking.sort_key)
    return rankings


def resilience_rank_table(
    rankings: Sequence["ResilienceRanking"],
    rate_rps: float,
    slo: "SLOSpec",
    scenario: str,
) -> str:
    """Resilience ranking rendered as a table (most resilient first)."""
    rows = []
    for rank, entry in enumerate(rankings, start=1):
        point = entry.result.point
        resilience = entry.fleet.resilience
        availability = (
            f"{resilience.availability:.1%}" if resilience else "-"
        )
        p99 = entry.during_p99_ms
        rows.append(
            (
                rank,
                point.network,
                point.budget_label,
                point.dtype,
                point.mode,
                availability,
                "-" if p99 is None else f"{p99:.2f}",
                entry.fleet.total_lost,
                f"{entry.report.worst_shed_rate:.1%}",
                "yes" if entry.report.meets else "NO",
            )
        )
    return render_table(
        (
            "#", "network", "budget", "dtype", "mode", "avail",
            "incident p99 ms", "lost", "shed", "meets SLO",
        ),
        rows,
        title=(
            f"resilience ranking under {scenario} @ {rate_rps:g} r/s "
            f"-- {len(rankings)} designs"
        ),
    )


def frontier_table(
    results: Iterable[SweepResult],
    maximize: Sequence[str] = ("throughput",),
    minimize: Sequence[str] = ("dsp",),
) -> str:
    """The Pareto frontier rendered as a table."""
    frontier = pareto_frontier(results, maximize=maximize, minimize=minimize)
    title = (
        f"Pareto frontier: max({', '.join(maximize)}) "
        f"vs min({', '.join(minimize)}) -- {len(frontier)} points"
    )
    return render_table(
        _SUMMARY_HEADERS, [_summary_row(r) for r in frontier], title=title
    )
