"""A small discrete-event simulation engine.

Used by the system-level Multi-CLP simulator to model CLPs contending
for a shared off-chip memory channel.  Events are (time, sequence,
callback) tuples on a heap; the sequence number keeps simultaneous
events in scheduling order, making runs fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["Simulator"]


class Simulator:
    """Deterministic event loop with a monotonically advancing clock.

    ``on_event``, when given, is called with the event's timestamp just
    before each callback runs — a read-only observation hook used by the
    telemetry layer (:mod:`repro.obs`) to count event-loop activity per
    window.  It must not schedule or mutate simulation state.
    """

    def __init__(
        self, on_event: Optional[Callable[[float], None]] = None
    ) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._on_event = on_event

    @property
    def now(self) -> float:
        """Current simulation time (cycles)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` cycles."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, (self._now + delay, next(self._counter), callback)
        )

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute ``time`` (stored exactly).

        The event fires at the float ``time`` given, not at
        ``now + (time - now)`` — the round trip through a delay can lose
        the last bit, which matters to callers that pin event times to an
        arithmetic grid (``index * epoch`` boundary chains, materialized
        arrival timestamps).
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains (or ``until`` passes).

        Returns the final simulation time.
        """
        while self._queue:
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = time
            self._processed += 1
            if self._on_event is not None:
                self._on_event(time)
            callback()
        return self._now

    def peek(self) -> Optional[float]:
        """Time of the next pending event, if any."""
        return self._queue[0][0] if self._queue else None
