"""Functional simulation of the CLP loop nests.

Two executable models of a convolutional layer:

* :func:`reference_conv` — the direct six-loop nest of Listing 1, the
  golden model.
* :func:`tiled_conv` — the tiled/unrolled nest of Listing 2 exactly as
  the CLP hardware executes it: explicit ``Ibuf``/``Obuf``/``Wbuf``
  on-chip buffers, boundary-clamped tile loops, and per-buffer transfer
  accounting.

Their numerical equivalence validates the accelerator's loop
transformation, and the transfer counters cross-validate the closed-form
bandwidth model in :mod:`repro.core.bandwidth`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Optional, Tuple

import numpy as np

from ..core.layer import ConvLayer, input_extent

__all__ = [
    "reference_conv",
    "tiled_conv",
    "TransferCounters",
    "random_layer_data",
]


@dataclass
class TransferCounters:
    """Words moved between off-chip memory and the CLP buffers."""

    input_words: int = 0
    weight_words: int = 0
    output_words: int = 0
    tile_count: int = 0

    @property
    def total_words(self) -> int:
        return self.input_words + self.weight_words + self.output_words


def _validate_operands(
    layer: ConvLayer, inputs: np.ndarray, weights: np.ndarray
) -> None:
    expected_input = (layer.n, layer.input_rows, layer.input_cols)
    if inputs.shape != expected_input:
        raise ValueError(
            f"input shape {inputs.shape} != expected {expected_input}"
        )
    expected_weights = (layer.m, layer.n, layer.k, layer.k)
    if weights.shape != expected_weights:
        raise ValueError(
            f"weight shape {weights.shape} != expected {expected_weights}"
        )


def reference_conv(
    layer: ConvLayer,
    inputs: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Golden convolution: the plain loop nest of Listing 1.

    The K x K loops run in Python; the (M, N) reductions use numpy.
    """
    _validate_operands(layer, inputs, weights)
    n, m, r, c, k, s = layer.dims
    out = np.zeros((m, r, c), dtype=np.result_type(inputs, weights))
    if bias is not None:
        if bias.shape != (m,):
            raise ValueError(f"bias shape {bias.shape} != ({m},)")
        out += bias[:, None, None]
    for i in range(k):
        for j in range(k):
            window = inputs[:, i : i + r * s : s, j : j + c * s : s]
            # out[m, r, c] += sum_n W[m, n, i, j] * window[n, r, c]
            out += np.tensordot(weights[:, :, i, j], window, axes=(1, 0))
    return out


def tiled_conv(
    layer: ConvLayer,
    inputs: np.ndarray,
    weights: np.ndarray,
    tn: int,
    tm: int,
    tr: int,
    tc: int,
    bias: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, TransferCounters]:
    """The CLP's tiled execution (Listing 2 / Listing 4).

    Data is staged through explicit on-chip buffers sized exactly as the
    BRAM model assumes; every buffer refill and write-out increments the
    transfer counters with the clamped (actual) word counts.
    """
    _validate_operands(layer, inputs, weights)
    if tn <= 0 or tm <= 0:
        raise ValueError(f"Tn and Tm must be positive, got ({tn}, {tm})")
    if not 1 <= tr <= layer.r or not 1 <= tc <= layer.c:
        raise ValueError(f"tile ({tr}, {tc}) out of range")
    n, m, r, c, k, s = layer.dims
    dtype = np.result_type(inputs, weights)
    out = np.zeros((m, r, c), dtype=dtype)
    counters = TransferCounters()

    in_rows = input_extent(tr, s, k)
    in_cols = input_extent(tc, s, k)
    ibuf = np.zeros((tn, in_rows, in_cols), dtype=dtype)
    obuf = np.zeros((tm, tr, tc), dtype=dtype)
    wbuf = np.zeros((tm, tn, k, k), dtype=dtype)

    for r0 in range(0, r, tr):
        rloops = min(tr, r - r0)
        for c0 in range(0, c, tc):
            cloops = min(tc, c - c0)
            for m0 in range(0, m, tm):
                mloops = min(tm, m - m0)
                obuf[:] = 0
                if bias is not None:
                    obuf[:mloops, :rloops, :cloops] = bias[
                        m0 : m0 + mloops, None, None
                    ]
                for n0 in range(0, n, tn):
                    nloops = min(tn, n - n0)
                    # --- refill Ibuf (clamped transfer) ---
                    row_lo = r0 * s
                    row_hi = (r0 + rloops - 1) * s + k
                    col_lo = c0 * s
                    col_hi = (c0 + cloops - 1) * s + k
                    ibuf[:] = 0
                    ibuf[:nloops, : row_hi - row_lo, : col_hi - col_lo] = (
                        inputs[n0 : n0 + nloops, row_lo:row_hi, col_lo:col_hi]
                    )
                    counters.input_words += (
                        nloops * (row_hi - row_lo) * (col_hi - col_lo)
                    )
                    # --- refill Wbuf ---
                    wbuf[:] = 0
                    wbuf[:mloops, :nloops] = weights[
                        m0 : m0 + mloops, n0 : n0 + nloops
                    ]
                    counters.weight_words += mloops * nloops * k * k
                    counters.tile_count += 1
                    # --- compute(): K x K outer, tile loops inner ---
                    for i in range(k):
                        for j in range(k):
                            window = ibuf[
                                :, i : i + rloops * s : s, j : j + cloops * s : s
                            ]
                            obuf[:, :rloops, :cloops] += np.tensordot(
                                wbuf[:, :, i, j], window, axes=(1, 0)
                            )
                # --- write_output() ---
                out[m0 : m0 + mloops, r0 : r0 + rloops, c0 : c0 + cloops] = (
                    obuf[:mloops, :rloops, :cloops]
                )
                counters.output_words += mloops * rloops * cloops
    return out, counters


def random_layer_data(
    layer: ConvLayer, seed: int = 0, dtype=np.float64
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic random (inputs, weights, bias) for a layer."""
    rng = np.random.default_rng(seed)
    inputs = rng.standard_normal(
        (layer.n, layer.input_rows, layer.input_cols)
    ).astype(dtype)
    weights = rng.standard_normal(
        (layer.m, layer.n, layer.k, layer.k)
    ).astype(dtype)
    bias = rng.standard_normal(layer.m).astype(dtype)
    return inputs, weights, bias
