"""Epoch-batched fast path for scenario-free traffic simulation.

The event engine (:mod:`repro.sim.engine`) charges ~3 heap events per
request; for plain open-loop runs — no fault scenario, no surge — the
whole simulation is a deterministic function of the arrival times and
the epoch grid, so it can be solved with batched numpy array ops
instead of a callback loop.  This module is that solver, used by
:func:`repro.serve.simulator.simulate_traffic` and
:class:`repro.fleet.cluster.ClusterSimulator` when ``engine="fast"``
(or ``"auto"`` without a scenario).

The contract is *bit-for-bit* equality with the event engine, not
statistical agreement: every float in the result is produced by the
same IEEE-754 operations in the same fold order the event loop would
have used.  The three places this bites, and how they are replicated:

* **Heap tie-breaks.**  An arrival at exactly a boundary time may fire
  before or after the boundary depending on *scheduling* order (the
  engine breaks time ties by insertion sequence).  The arrival chain
  schedules arrival ``i`` during arrival ``i-1``'s fire and the
  boundary chain schedules boundary ``k`` during boundary ``k-1``'s
  fire, so the winner follows from comparing those two earlier fire
  times — recursively when *they* tie too.  ``_eligibility`` resolves
  the recursion with a vectorized forward fill over the tie chains.
* **Fold order.**  Occupancy integrals and latency means are fold-left
  float sums in event order.  ``numpy.cumsum`` is a sequential
  fold-left (unlike ``numpy.sum``, which is pairwise), so
  ``cumsum(...)[-1]`` reproduces the event loop's accumulator exactly.
* **Grid times.**  Boundaries live on the exact grid ``k * epoch`` in
  both engines (see the ``schedule_at`` chains), so admission and
  completion timestamps are single multiplications, identical on both
  paths.

CLP busy cycles are integer-valued and far below 2**53, so their float
accumulation is exact in any order and needs no special care.

The fleet solver covers balancers whose routing is a function of the
per-tenant arrival index alone — round-robin (per-tenant counters),
tenant-affinity (a pure hash), and any policy when a tenant has exactly
one eligible replica.  Load-dependent policies over multiple replicas
(least-outstanding, power-of-two, random's shared RNG stream) depend on
the global event interleaving; for those the cluster falls back to the
reference event engine, which is what ``engine="fast"`` documents: a
promise about results, not mechanism.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..serve.arrivals import ArrivalProcess, ConstantRate

__all__ = [
    "ENGINES",
    "resolve_engine",
    "materialize_arrivals",
    "run_serve_fast",
    "fleet_fast_supported",
    "run_fleet_fast",
]

#: Engine selectors accepted by the simulators.
ENGINES = ("auto", "fast", "event")


def resolve_engine(
    engine: str,
    *,
    has_scenario: bool = False,
    has_overload: bool = False,
    has_detector: bool = False,
) -> str:
    """Pick the concrete engine for a run.

    ``auto`` selects the fast path whenever no fault/surge scenario is
    in play, no overload feature (admission, non-FIFO discipline,
    retries, brownout, deadlines) is active, and no *active* failure
    detector (probe mode or request timeouts) is armed; the event
    engine remains the reference (and only) path for those runs —
    failure events, retry feedback loops, and probe/timeout events
    genuinely interleave with traffic.  Requesting ``fast`` together
    with any of them is an error rather than a silent downgrade.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
    if engine == "auto":
        return (
            "event"
            if (has_scenario or has_overload or has_detector)
            else "fast"
        )
    if engine == "fast" and has_scenario:
        raise ValueError(
            "engine='fast' cannot run fault/surge scenarios; "
            "use engine='event' (or 'auto') for scenario runs"
        )
    if engine == "fast" and has_overload:
        raise ValueError(
            "engine='fast' cannot run overload control (admission, "
            "queue disciplines, retries, brownout, deadlines); "
            "use engine='event' (or 'auto') for overload runs"
        )
    if engine == "fast" and has_detector:
        raise ValueError(
            "engine='fast' cannot run an active failure detector "
            "(probe mode or request timeouts); use engine='event' "
            "(or 'auto') for detector runs"
        )
    return engine


# --------------------------------------------------------------- arrivals
def materialize_arrivals(
    process: ArrivalProcess,
    seed_key: str,
    limit: Optional[int],
    horizon: float,
) -> np.ndarray:
    """All arrival times one stream would fire, as a float64 array.

    Replicates the event loop's pump exactly: stop at ``limit``
    arrivals, at stream exhaustion, or at the first time beyond the
    horizon.  Constant-rate streams (the common benchmark shape) are
    generated without touching the RNG — their generator ignores it —
    while stochastic processes replay ``random.Random(seed_key)``
    draw-for-draw, which keeps the traffic identical to the event
    engine's streams by construction.
    """
    if isinstance(process, ConstantRate):
        period = 1.0 / process.rate
        count = int(horizon / period) + 2
        times = np.arange(count, dtype=np.float64) * period
        times = times[times <= horizon]
        if limit is not None:
            times = times[:limit]
        return times
    rng = random.Random(seed_key)
    stream: Iterator[float] = process.times(rng)
    out: List[float] = []
    while limit is None or len(out) < limit:
        try:
            when = next(stream)
        except StopIteration:
            break
        if when > horizon:
            break
        out.append(when)
    return np.asarray(out, dtype=np.float64)


# ------------------------------------------------------------------- grid
def _last_boundary(horizon: float, epoch: float) -> int:
    """Largest ``k`` with ``k * epoch <= horizon`` under float rounding."""
    k = int(horizon / epoch)
    while (k + 1) * epoch <= horizon:
        k += 1
    while k > 0 and k * epoch > horizon:
        k -= 1
    return k


def _eligibility(arrivals: np.ndarray, epoch: float) -> np.ndarray:
    """First boundary index that fires after each arrival's event.

    For arrival time ``a`` strictly between boundaries this is simply
    ``ceil(a / epoch)``.  On an exact tie ``a == k * epoch`` the heap
    order decides: the arrival fires first (eligibility ``k``) iff its
    event was *scheduled* before the boundary's — i.e. iff the previous
    arrival fired before boundary ``k-1``, which on a further tie is the
    same question one step back.  Tie chains are resolved by evaluating
    the chain head's base case and forward-filling it down the chain.
    Boundary 0 runs synchronously before any event, so a time-0 arrival
    is never eligible for it.
    """
    n = arrivals.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    k0 = np.ceil(arrivals / epoch).astype(np.int64)
    # Guard the division against float error in either direction.
    k0 = np.where((k0 - 1) * epoch >= arrivals, k0 - 1, k0)
    k0 = np.where(k0 * epoch < arrivals, k0 + 1, k0)
    tie = k0 * epoch == arrivals

    prev = np.empty(n, dtype=np.float64)
    prev[1:] = arrivals[:-1]
    prev[0] = -1.0  # sentinel; index 0 uses its own base case below
    t_prev = (k0 - 1) * epoch
    # Chained: the previous arrival sits exactly on boundary k0-1, so
    # this tie resolves the same way that one did.
    chained = tie & (k0 > 0) & (prev == t_prev)
    chained[0] = False
    # Base case: scheduled strictly before the boundary's own schedule
    # point (or at setup, which precedes the whole run).
    fires_first = tie & (k0 > 0) & (prev < t_prev)
    fires_first[0] = bool(tie[0]) and k0[0] > 0
    head = np.maximum.accumulate(
        np.where(~chained, np.arange(n, dtype=np.int64), -1)
    )
    resolved = fires_first[head]
    return np.where(tie, np.where(resolved, k0, k0 + 1), k0)


# ------------------------------------------------------------ FIFO solver
class _StreamResult:
    """One (tenant, replica) sub-stream solved against one epoch grid."""

    __slots__ = (
        "s_adm", "adm_times", "drops", "queue_times",
        "area", "mark", "peak", "last_boundary", "stream_close",
    )

    def __init__(
        self,
        s_adm: np.ndarray,
        adm_times: np.ndarray,
        drops: int,
        queue_times: Sequence[float],
        area: float,
        mark: float,
        peak: int,
        stream_close: int,
    ):
        self.s_adm = s_adm
        self.adm_times = adm_times
        self.drops = drops
        self.queue_times = queue_times
        self.area = area
        self.mark = mark
        self.peak = peak
        #: Boundary index of the last admission (0 when none): with the
        #: stream-close index below, how far a drain must chain.
        self.last_boundary = int(s_adm[-1]) if s_adm.size else 0
        self.stream_close = stream_close


def _solve_stream(
    arrivals: np.ndarray,
    eligibility: np.ndarray,
    epoch: float,
    last_k: int,
    queue_depth: int,
    policy: str,
    drain: bool,
) -> _StreamResult:
    """Solve one FIFO admission queue against one boundary grid.

    ``last_k`` is the last boundary that exists without draining; in
    drain mode the chain extends as far as pending work requires.  The
    vectorized branch handles the no-drop case (one closed-form
    recurrence); any run that would drop falls back to a serial Python
    replay of the exact event semantics, still O(arrivals).
    """
    n = arrivals.size
    stream_close = int(eligibility[-1]) if n else 0
    if n == 0:
        empty = np.empty(0, dtype=np.float64)
        return _StreamResult(
            np.empty(0, dtype=np.int64), empty, 0, (), 0.0, 0.0, 0, 0
        )

    index = np.arange(n, dtype=np.int64)
    # FIFO with one admission per boundary: s_i = max(s_{i-1}+1, e_i).
    s = index + np.maximum.accumulate(eligibility - index)
    # Queue length each arrival observes just before its push: arrivals
    # admitted strictly before its fire are exactly those with s < e.
    length = index - np.searchsorted(s, eligibility, side="left")
    if int(length.max()) >= queue_depth:
        return _solve_stream_serial(
            arrivals, eligibility, epoch, last_k, queue_depth, policy,
            drain, stream_close,
        )

    cutoff = np.searchsorted(s, last_k, side="right") if not drain else n
    s_adm = s[:cutoff]
    adm_times = arrivals[:cutoff]
    queue_times = arrivals[cutoff:].tolist()

    # Occupancy integral in event order: pushes keyed by eligibility
    # (an arrival fires just before boundary e), pops keyed by their
    # admission boundary, pushes winning boundary-index ties (the
    # arrival fired first — that is what eligibility encodes).
    kind = np.concatenate(
        (np.zeros(n, dtype=np.int64), np.ones(cutoff, dtype=np.int64))
    )
    key = np.concatenate((eligibility, s_adm))
    times = np.concatenate((arrivals, s_adm * epoch))
    delta = np.concatenate(
        (np.ones(n, dtype=np.int64), -np.ones(cutoff, dtype=np.int64))
    )
    order = np.lexsort((kind, key))
    times = times[order]
    running = np.cumsum(delta[order])
    before = running - delta[order]
    prev_times = np.empty_like(times)
    prev_times[1:] = times[:-1]
    prev_times[0] = 0.0
    steps = np.cumsum(before * (times - prev_times))
    area = float(steps[-1])
    mark = float(times[-1])
    peak = int(length.max()) + 1
    return _StreamResult(
        s_adm, adm_times, 0, queue_times, area, mark, peak, stream_close
    )


def _solve_stream_serial(
    arrivals: np.ndarray,
    eligibility: np.ndarray,
    epoch: float,
    last_k: int,
    queue_depth: int,
    policy: str,
    drain: bool,
    stream_close: int,
) -> _StreamResult:
    """Reference replay for streams that drop: exact event semantics.

    Walks arrivals and the boundaries interleaved between them in fire
    order, touching the occupancy integral with plain Python float ops
    exactly where ``TenantState`` would.  Boundaries with an empty
    queue are skipped wholesale (they touch nothing), keeping the loop
    O(arrivals) even over very long horizons.
    """
    queue: deque = deque()
    area = 0.0
    mark = 0.0
    peak = 0
    drops = 0
    s_list: List[int] = []
    adm_list: List[float] = []
    next_k = 1

    def pop_until(limit_k: int) -> None:
        nonlocal area, mark, next_k
        while queue and next_k <= limit_k:
            t_k = next_k * epoch
            area += len(queue) * (t_k - mark)
            mark = t_k
            adm_list.append(queue.popleft())
            s_list.append(next_k)
            next_k += 1

    for i in range(arrivals.size):
        when = float(arrivals[i])
        fires_at = int(eligibility[i])
        # Boundaries before this arrival's fire serve the queue first.
        pop_until(min(fires_at - 1, last_k) if not drain else fires_at - 1)
        if not queue:
            next_k = max(next_k, fires_at)
        area += len(queue) * (when - mark)
        mark = when
        if len(queue) >= queue_depth:
            drops += 1
            if policy == "drop-tail":
                continue
            queue.popleft()  # drop-head: evict the stalest waiter
        queue.append(when)
        if len(queue) > peak:
            peak = len(queue)
    if drain:
        # Draining chains one boundary per remaining waiter until empty.
        pop_until(next_k + len(queue))
    else:
        pop_until(last_k)
    return _StreamResult(
        np.asarray(s_list, dtype=np.int64),
        np.asarray(adm_list, dtype=np.float64),
        drops,
        list(queue),
        area,
        mark,
        peak,
        stream_close,
    )


# ---------------------------------------------------------- state filling
def _fill_state(
    state,
    arrivals: np.ndarray,
    solved: _StreamResult,
    epoch: float,
    drain: bool,
    horizon: float,
) -> Optional[float]:
    """Write one solved sub-stream into a ``TenantState``.

    Returns the last completion time (for the drain elapsed-time
    reduction), or ``None`` when nothing completed.
    """
    depth_cycles = state.depth_epochs * epoch
    finish = solved.s_adm.astype(np.float64) * epoch + depth_cycles
    if drain:
        fired = finish.size
    else:
        fired = int(np.searchsorted(finish, horizon, side="right"))
    latencies = finish[:fired] - solved.adm_times[:fired]

    state.arrivals = int(arrivals.size)
    state.drops = solved.drops
    state.completions = fired
    state.pipeline = int(finish.size) - fired
    state.latencies = latencies.tolist()
    if fired:
        state.first_completion = float(finish[0])
        state.last_completion = float(finish[fired - 1])
    state.queue = deque(float(t) for t in solved.queue_times)
    state.peak_queue = solved.peak
    state._occupancy_area = solved.area
    state._occupancy_mark = solved.mark
    state.stream_open = False
    return float(finish[fired - 1]) if fired else None


def _charge_clps(clp_busy: List[float], state, admissions: int) -> None:
    """Admission-time CLP charges: exact integers, so one multiply."""
    for clp_index, cycles in enumerate(state.clp_cycles):
        clp_busy[clp_index] += admissions * cycles


# ------------------------------------------------------------------ serve
def run_serve_fast(
    states: Sequence,
    clp_busy: List[float],
    epoch: float,
    horizon: float,
    seed: int,
    drain: bool,
) -> float:
    """Solve a single-device run in place; returns the elapsed cycles.

    ``states`` are the run's fresh ``TenantState`` objects (in tenant
    order, as ``simulate_traffic`` builds them); each is filled with
    exactly the counters and float accumulators the event loop would
    have left behind, so the caller's result assembly is shared between
    engines.  CLP busy cycles are charged through each state's
    ``clp_cycles`` just as boundary admissions would.
    """
    last_k = _last_boundary(horizon, epoch)
    chain_end = last_k
    last_finish: Optional[float] = None
    for index, state in enumerate(states):
        arrivals = materialize_arrivals(
            state.spec.process,
            f"{seed}/{index}/{state.spec.name}",
            state.spec.limit,
            horizon,
        )
        solved = _solve_stream(
            arrivals,
            _eligibility(arrivals, epoch),
            epoch,
            last_k,
            state.queue_depth,
            state.policy,
            drain,
        )
        finish = _fill_state(state, arrivals, solved, epoch, drain, horizon)
        if finish is not None and (last_finish is None or finish > last_finish):
            last_finish = finish
        _charge_clps(clp_busy, state, int(solved.s_adm.size))
        chain_end = max(chain_end, solved.last_boundary, solved.stream_close)
    if not drain:
        return horizon
    elapsed = max(horizon, chain_end * epoch)
    if last_finish is not None:
        elapsed = max(elapsed, last_finish)
    return elapsed


# ------------------------------------------------------------------ fleet
def fleet_fast_supported(balancer, eligible: Dict[str, Tuple[int, ...]]) -> bool:
    """Can routing be computed from per-tenant arrival indexes alone?

    True for round-robin (per-tenant counters), tenant-affinity (pure
    hash), and the known randomized/load-aware policies when every
    tenant has a single eligible replica (their route degenerates to
    that replica regardless of RNG or load).  Custom subclasses are
    never assumed — ``type`` is compared exactly, since a subclass may
    override ``route`` with arbitrary order-dependent behaviour.
    """
    from ..fleet.balancer import (
        LeastOutstandingBalancer,
        PowerOfTwoBalancer,
        RandomBalancer,
        RoundRobinBalancer,
        TenantAffinityBalancer,
    )

    kind = type(balancer)
    if kind in (RoundRobinBalancer, TenantAffinityBalancer):
        return True
    if kind in (LeastOutstandingBalancer, PowerOfTwoBalancer, RandomBalancer):
        return all(len(targets) == 1 for targets in eligible.values())
    return False


def _static_routes(
    balancer, name: str, targets: Tuple[int, ...], count: int
) -> np.ndarray:
    """Replica index for each of a tenant's ``count`` arrivals."""
    from ..fleet.balancer import RoundRobinBalancer, TenantAffinityBalancer

    if len(targets) == 1:
        return np.full(count, targets[0], dtype=np.int64)
    if type(balancer) is RoundRobinBalancer:
        # The per-tenant counter advances once per arrival, and a
        # tenant's arrivals fire in index order, so the n-th arrival
        # draws turn n no matter how tenants interleave globally.
        choice = np.asarray(targets, dtype=np.int64)
        return choice[np.arange(count, dtype=np.int64) % len(targets)]
    if type(balancer) is TenantAffinityBalancer:
        import zlib

        digest = zlib.crc32(name.encode("utf-8"))
        return np.full(count, targets[digest % len(targets)], dtype=np.int64)
    raise AssertionError(f"unsupported balancer {balancer.name!r}")


def run_fleet_fast(
    replicas: Sequence,
    tenants: Sequence,
    eligible: Dict[str, Tuple[int, ...]],
    balancer,
    horizon: float,
    seed: int,
    drain: bool,
) -> float:
    """Solve a fleet run in place; returns the elapsed cycles.

    Each (replica, tenant) pair is an independent FIFO once routing is
    fixed, so the fleet reduces to per-replica instances of the serve
    solver — with one cross-cutting wrinkle: heap tie-breaks chain
    through the *tenant's* full arrival stream (arrival ``i`` is always
    scheduled by arrival ``i-1``, wherever that one routed), so
    eligibility is computed on the full stream per epoch grid and only
    then split by route.  A tenant's stream also keeps every replica
    that serves it draining until the stream closes, routed there or
    not, which is what ``stream_close`` carries across.
    """
    last_finish: Optional[float] = None
    chain_ends = [
        _last_boundary(horizon, replica.epoch) for replica in replicas
    ]
    last_ks = list(chain_ends)
    for index, spec in enumerate(tenants):
        arrivals = materialize_arrivals(
            spec.process, f"{seed}/{index}/{spec.name}", spec.limit, horizon
        )
        targets = eligible[spec.name]
        routes = _static_routes(balancer, spec.name, targets, arrivals.size)
        # One eligibility pass per distinct epoch among serving replicas.
        by_epoch: Dict[float, np.ndarray] = {}
        for r in targets:
            epoch = replicas[r].epoch
            if epoch not in by_epoch:
                by_epoch[epoch] = _eligibility(arrivals, epoch)
        for r in targets:
            replica = replicas[r]
            state = replica.states[spec.name]
            mask = routes == r
            solved = _solve_stream(
                arrivals[mask],
                by_epoch[replica.epoch][mask],
                replica.epoch,
                last_ks[r],
                state.queue_depth,
                state.policy,
                drain,
            )
            finish = _fill_state(
                state, arrivals[mask], solved, replica.epoch, drain, horizon
            )
            if finish is not None and (
                last_finish is None or finish > last_finish
            ):
                last_finish = finish
            _charge_clps(replica.clp_busy, state, int(solved.s_adm.size))
            stream_close = (
                int(by_epoch[replica.epoch][-1]) if arrivals.size else 0
            )
            chain_ends[r] = max(
                chain_ends[r], solved.last_boundary, stream_close
            )
    if not drain:
        return horizon
    elapsed = horizon
    for r, replica in enumerate(replicas):
        t_end = chain_ends[r] * replica.epoch
        if t_end > elapsed:
            elapsed = t_end
    if last_finish is not None and last_finish > elapsed:
        elapsed = last_finish
    return elapsed
