"""Cycle-level simulation of one double-buffered CLP.

Replaces the paper's RTL simulation (Section 6.4).  The simulator walks
the exact tile sequence of Listing 4 — ``(r, c, m, n)`` order with
boundary clamping — and resolves the timing recurrences of the
double-buffered datapath:

* the CLP's memory port executes transfers first-come-first-served;
* the input/weight transfer of tile *i* may start once the port is free
  and compute of tile *i-2* has released the ping-pong buffer;
* compute of tile *i* starts when its transfer and the previous compute
  are done (plus a pipeline-fill latency per tile);
* the output write of group *g* is issued after the group's last
  compute and must drain before compute of group *g+2* reuses the
  output buffer.

With unlimited bandwidth and zero pipeline depth the simulated cycle
count equals the analytical model exactly; with a pipeline depth it
differs by ``depth`` cycles per tile, matching the paper's observation
that RTL simulation "only differs from our model by the pipeline depth
of the implementation".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.clp import CLPConfig
from ..core.datatypes import DataType
from ..core.layer import ConvLayer

__all__ = ["TileJob", "tile_sequence", "LayerSimResult", "ClpSimResult", "simulate_clp"]


@dataclass(frozen=True)
class TileJob:
    """One (r, c, m, n) iteration of the tiled loop nest."""

    layer_name: str
    load_words: int  # clamped input + weight words for this tile
    compute_cycles: int
    write_words: int  # output words written after this tile (0 unless
    # this is the last n-step of its (r, c, m) group)


def tile_sequence(
    layer: ConvLayer, tn: int, tm: int, tr: int, tc: int
) -> List[TileJob]:
    """The exact tile stream the CLP executes for one layer."""
    n, m, r, c, k, s = layer.dims
    jobs: List[TileJob] = []
    for r0 in range(0, r, tr):
        rloops = min(tr, r - r0)
        rows = (rloops - 1) * s + k
        for c0 in range(0, c, tc):
            cloops = min(tc, c - c0)
            cols = (cloops - 1) * s + k
            for m0 in range(0, m, tm):
                mloops = min(tm, m - m0)
                n_steps = -(-n // tn)
                for step, n0 in enumerate(range(0, n, tn)):
                    nloops = min(tn, n - n0)
                    load = nloops * rows * cols + mloops * nloops * k * k
                    is_last = step == n_steps - 1
                    jobs.append(
                        TileJob(
                            layer_name=layer.name,
                            load_words=load,
                            compute_cycles=k * k * rloops * cloops,
                            write_words=mloops * rloops * cloops if is_last else 0,
                        )
                    )
    return jobs


@dataclass(frozen=True)
class LayerSimResult:
    """Timing of one layer within the CLP's run."""

    layer_name: str
    start_cycle: float
    end_cycle: float
    compute_cycles: int
    stall_cycles: float

    @property
    def elapsed(self) -> float:
        return self.end_cycle - self.start_cycle


@dataclass(frozen=True)
class ClpSimResult:
    """Outcome of simulating a CLP over all its layers."""

    total_cycles: float
    layers: Tuple[LayerSimResult, ...]
    transferred_words: int

    @property
    def total_stall_cycles(self) -> float:
        return sum(layer.stall_cycles for layer in self.layers)


def simulate_clp(
    clp: CLPConfig,
    bytes_per_cycle: Optional[float] = None,
    pipeline_depth: int = 0,
) -> ClpSimResult:
    """Simulate a CLP processing its layers back to back.

    ``bytes_per_cycle`` caps the CLP's memory port (None = unlimited);
    ``pipeline_depth`` adds a fill latency to every tile's compute,
    modelling the implementation's pipelined datapath.
    """
    if bytes_per_cycle is not None and bytes_per_cycle <= 0:
        raise ValueError("bytes_per_cycle must be positive when set")
    if pipeline_depth < 0:
        raise ValueError("pipeline_depth must be non-negative")
    word_bytes = clp.dtype.word_bytes

    def transfer_time(words: int) -> float:
        if bytes_per_cycle is None or words == 0:
            return 0.0
        return words * word_bytes / bytes_per_cycle

    port_free = 0.0
    compute_done: List[float] = []  # per tile, global index
    write_done_by_group: List[float] = []
    results: List[LayerSimResult] = []
    transferred = 0
    tile_index = 0
    group_index = 0
    clock = 0.0

    for layer, (tr, tc) in zip(clp.layers, clp.tile_plans):
        layer_start = clock
        layer_compute = 0
        jobs = tile_sequence(layer, clp.tn, clp.tm, tr, tc)
        for job in jobs:
            # Input/weight load: port free + ping-pong buffer released.
            buffer_ready = (
                compute_done[tile_index - 2] if tile_index >= 2 else 0.0
            )
            load_start = max(port_free, buffer_ready)
            load_end = load_start + transfer_time(job.load_words)
            port_free = load_end
            transferred += job.load_words
            # Compute: own load done + previous compute done.
            prev_compute = compute_done[-1] if compute_done else 0.0
            start = max(load_end, prev_compute)
            # Output ping-pong: reusing the buffer of group g-2 requires
            # that group's write to have drained.
            if job.write_words and group_index >= 2:
                start = max(start, write_done_by_group[group_index - 2])
            end = start + job.compute_cycles + pipeline_depth
            compute_done.append(end)
            layer_compute += job.compute_cycles
            tile_index += 1
            if job.write_words:
                write_start = max(port_free, end)
                write_end = write_start + transfer_time(job.write_words)
                port_free = write_end
                write_done_by_group.append(write_end)
                transferred += job.write_words
                group_index += 1
        clock = compute_done[-1]
        results.append(
            LayerSimResult(
                layer_name=layer.name,
                start_cycle=layer_start,
                end_cycle=clock,
                compute_cycles=layer_compute,
                stall_cycles=(clock - layer_start) - layer_compute,
            )
        )
    # The final group's write must drain before the CLP is done.
    total = max(clock, write_done_by_group[-1] if write_done_by_group else clock)
    return ClpSimResult(
        total_cycles=total,
        layers=tuple(results),
        transferred_words=transferred,
    )
