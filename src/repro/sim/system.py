"""Discrete-event simulation of a full Multi-CLP system (Section 4.1).

All CLPs of a design run one epoch concurrently, contending for a shared
off-chip memory channel.  The channel is a processor-sharing server:
active transfers split the total bandwidth equally, which models an AXI
interconnect arbitrating fairly among the CLPs' DataMovers.

Each CLP issues its tile stream through a private port-FIFO with the
same double-buffering constraints as :mod:`repro.sim.clp_sim`; only the
transfer *rate* is dynamic here.  The simulator reports per-CLP finish
times (the epoch length is their maximum) and channel statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.design import MultiCLPDesign
from .clp_sim import TileJob, tile_sequence
from .engine import Simulator

__all__ = ["SharedChannel", "SystemSimResult", "simulate_system"]


class SharedChannel:
    """Processor-sharing memory channel with weighted arbitration.

    Active jobs split ``bytes_per_cycle`` proportionally to their
    weights; rates are recomputed whenever a job arrives or completes.
    Weighted shares model the paper's per-CLP AXI stream ports (NP, WP,
    MP in Section 5), which provision each CLP's bandwidth share.
    ``None`` bandwidth means transfers complete instantaneously.
    """

    def __init__(self, sim: Simulator, bytes_per_cycle: Optional[float]):
        if bytes_per_cycle is not None and bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive when set")
        self._sim = sim
        self._rate = bytes_per_cycle
        self._jobs: List[List] = []  # [remaining_bytes, callback, weight]
        self._last_update = 0.0
        self._plan_version = 0  # invalidates stale completion events
        self.busy_cycles = 0.0
        self.bytes_moved = 0.0

    # ------------------------------------------------------------- internal
    def _advance(self) -> None:
        now = self._sim.now
        elapsed = now - self._last_update
        if elapsed > 0 and self._jobs and self._rate is not None:
            total_weight = sum(job[2] for job in self._jobs)
            for job in self._jobs:
                job[0] -= self._rate * job[2] / total_weight * elapsed
            self.busy_cycles += elapsed
        self._last_update = now

    def _schedule_next_completion(self) -> None:
        if not self._jobs or self._rate is None:
            return
        total_weight = sum(job[2] for job in self._jobs)
        delay = min(
            max(job[0], 0.0) / (self._rate * job[2] / total_weight)
            for job in self._jobs
        )
        self._plan_version += 1
        token = self._plan_version
        self._sim.schedule(delay, lambda: self._complete(token))

    def _complete(self, token: int) -> None:
        if token != self._plan_version:
            return  # superseded by a later submit/completion re-plan
        if not self._jobs:
            return
        self._advance()
        # Floating-point residue can leave the due job with a few
        # stray bytes; the job this event targeted is finished by
        # construction, so always retire at least the smallest one.
        threshold = max(1e-9, min(job[0] for job in self._jobs))
        finished = [job for job in self._jobs if job[0] <= threshold]
        self._jobs = [job for job in self._jobs if job[0] > threshold]
        for job in finished:
            job[1]()
        self._schedule_next_completion()

    # --------------------------------------------------------------- public
    def submit(
        self, nbytes: float, callback: Callable[[], None], weight: float = 1.0
    ) -> None:
        """Transfer ``nbytes``; ``callback`` fires on completion."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        if weight <= 0:
            raise ValueError("weight must be positive")
        self.bytes_moved += nbytes
        if self._rate is None or nbytes == 0:
            self._sim.schedule(0.0, callback)
            return
        self._advance()
        self._jobs.append([float(nbytes), callback, float(weight)])
        # Rates changed: re-plan the next completion (stale events are
        # ignored via the version token).
        self._schedule_next_completion()


class _ClpAgent:
    """State machine driving one CLP's tile stream through the channel."""

    def __init__(
        self,
        sim: Simulator,
        channel: SharedChannel,
        jobs: List[TileJob],
        word_bytes: int,
        pipeline_depth: int,
        weight: float = 1.0,
    ):
        self._sim = sim
        self._channel = channel
        self._jobs = jobs
        self._word_bytes = word_bytes
        self._depth = pipeline_depth
        self._weight = weight
        self._load_done: Dict[int, float] = {}
        self._compute_done: Dict[int, float] = {}
        self._write_done: Dict[int, float] = {}
        self._groups = [i for i, job in enumerate(jobs) if job.write_words]
        self._port_queue: List[Tuple[str, int]] = []  # (kind, tile index)
        self._port_busy = False
        self._next_load = 0
        self._next_compute = 0
        self._outstanding_writes = 0
        self.finish_time: Optional[float] = None
        self.stall_cycles = 0.0

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        self._try_issue_load()

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    # ----------------------------------------------------------------- port
    def _enqueue(self, kind: str, index: int) -> None:
        self._port_queue.append((kind, index))
        self._pump_port()

    def _pump_port(self) -> None:
        if self._port_busy or not self._port_queue:
            return
        kind, index = self._port_queue.pop(0)
        job = self._jobs[index]
        words = job.load_words if kind == "load" else job.write_words
        self._port_busy = True

        def finished(kind=kind, index=index) -> None:
            self._port_busy = False
            if kind == "load":
                self._load_done[index] = self._sim.now
                self._try_start_compute()
            else:
                self._write_done[index] = self._sim.now
                self._outstanding_writes -= 1
                self._try_start_compute()
                self._check_finished()
            self._try_issue_load()
            self._pump_port()

        self._channel.submit(words * self._word_bytes, finished, self._weight)

    # ---------------------------------------------------------------- loads
    def _try_issue_load(self) -> None:
        while self._next_load < len(self._jobs):
            index = self._next_load
            # Ping-pong input buffer: tile i's load needs compute i-2 done.
            if index >= 2 and (index - 2) not in self._compute_done:
                return
            self._next_load += 1
            self._enqueue("load", index)

    # -------------------------------------------------------------- compute
    def _group_of(self, index: int) -> int:
        # Group number of the write-bearing tile `index`.
        return self._groups.index(index)

    def _try_start_compute(self) -> None:
        index = self._next_compute
        if index >= len(self._jobs):
            return
        if index not in self._load_done:
            return
        if index > 0 and (index - 1) not in self._compute_done:
            return
        job = self._jobs[index]
        if job.write_words:
            group = self._group_of(index)
            if group >= 2:
                blocker = self._groups[group - 2]
                if blocker not in self._write_done:
                    return
        ready = max(
            self._load_done[index],
            self._compute_done.get(index - 1, 0.0),
        )
        self.stall_cycles += self._sim.now - ready if self._sim.now > ready else 0.0
        self._next_compute += 1

        def computed(index=index, job=job) -> None:
            self._compute_done[index] = self._sim.now
            if job.write_words:
                self._outstanding_writes += 1
                self._enqueue("write", index)
            self._try_issue_load()
            self._try_start_compute()
            self._check_finished()

        self._sim.schedule(job.compute_cycles + self._depth, computed)

    def _check_finished(self) -> None:
        if (
            self.finish_time is None
            and self._next_compute == len(self._jobs)
            and len(self._compute_done) == len(self._jobs)
            and self._outstanding_writes == 0
            and not self._port_queue
            and not self._port_busy
        ):
            self.finish_time = self._sim.now


@dataclass(frozen=True)
class SystemSimResult:
    """Outcome of one simulated epoch of a Multi-CLP design."""

    epoch_cycles: float
    clp_finish_cycles: Tuple[float, ...]
    channel_busy_cycles: float
    bytes_moved: float

    def achieved_bandwidth_bytes_per_cycle(self) -> float:
        return self.bytes_moved / self.epoch_cycles

    def channel_utilization(self) -> float:
        return self.channel_busy_cycles / self.epoch_cycles


def simulate_system(
    design: MultiCLPDesign,
    bytes_per_cycle: Optional[float] = None,
    pipeline_depth: int = 0,
    proportional_shares: bool = True,
) -> SystemSimResult:
    """Simulate one epoch of ``design`` on a shared memory channel.

    With ``proportional_shares`` (default), each CLP's transfers are
    weighted by its modelled bandwidth need, emulating the per-CLP AXI
    port provisioning of Section 5; otherwise arbitration is equal-share.
    """
    sim = Simulator()
    channel = SharedChannel(sim, bytes_per_cycle)
    if proportional_shares and bytes_per_cycle is not None:
        target = design.epoch_cycles * 1.02
        weights = [max(clp.min_bandwidth_for(target), 1e-6) for clp in design.clps]
    else:
        weights = [1.0] * len(design.clps)
    agents: List[_ClpAgent] = []
    for clp, weight in zip(design.clps, weights):
        jobs: List[TileJob] = []
        for layer, (tr, tc) in zip(clp.layers, clp.tile_plans):
            jobs.extend(tile_sequence(layer, clp.tn, clp.tm, tr, tc))
        agents.append(
            _ClpAgent(
                sim,
                channel,
                jobs,
                word_bytes=design.dtype.word_bytes,
                pipeline_depth=pipeline_depth,
                weight=weight,
            )
        )
    for agent in agents:
        agent.start()
    sim.run()
    unfinished = [i for i, agent in enumerate(agents) if not agent.done]
    if unfinished:
        raise RuntimeError(f"CLPs {unfinished} deadlocked in simulation")
    finishes = tuple(agent.finish_time for agent in agents)
    return SystemSimResult(
        epoch_cycles=max(finishes),
        clp_finish_cycles=finishes,
        channel_busy_cycles=channel.busy_cycles,
        bytes_moved=channel.bytes_moved,
    )
