"""Simulators: functional (numerical), cycle-level CLP, and system DES."""

from .clp_sim import (
    ClpSimResult,
    LayerSimResult,
    TileJob,
    simulate_clp,
    tile_sequence,
)
from .engine import Simulator
from .fastpath import ENGINES, resolve_engine
from .functional import (
    TransferCounters,
    random_layer_data,
    reference_conv,
    tiled_conv,
)
from .system import SharedChannel, SystemSimResult, simulate_system

__all__ = [
    "reference_conv",
    "tiled_conv",
    "random_layer_data",
    "TransferCounters",
    "Simulator",
    "ENGINES",
    "resolve_engine",
    "TileJob",
    "tile_sequence",
    "simulate_clp",
    "ClpSimResult",
    "LayerSimResult",
    "SharedChannel",
    "SystemSimResult",
    "simulate_system",
]
