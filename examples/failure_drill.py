#!/usr/bin/env python
"""Failure drills: what a provisioned fleet does when things go wrong.

``fleet_capacity.py`` sizes a fleet for the happy path; this example
asks the operator's follow-up questions.  A capacity number is only
trustworthy if it survives the bad day it will eventually meet:

1. run the planned 4-board AlexNet fleet through every named drill in
   the scenario library (rack loss, flash crowd, rolling reboot, ...)
   and compare tail latency *during* incidents against calm periods;
2. show why the drop budget must fund the drill — in-flight work on a
   dead board is gone no matter how clever the balancer is;
3. capacity-plan the same SLO at N+0 and N+1 redundancy and price the
   insurance (extra boards bought vs requests saved);
4. autoscale through a flash crowd with incident-aware windows, where
   the controller reacts to the spike's own p99 rather than the
   window-wide average that hides it.

Run:  python examples/failure_drill.py
"""

from repro import FLOAT32, budget_for, get_network, optimize_multi_clp
from repro.analysis.report import render_table
from repro.fleet import (
    AutoscalerPolicy,
    DeviceSpec,
    autoscale,
    plan_capacity,
    simulate_fleet,
)
from repro.scenario import SCENARIO_NAMES, get_scenario
from repro.serve import PoissonArrivals, SLOSpec, TenantSpec

FREQ_MHZ = 100.0
CYCLES_PER_SECOND = FREQ_MHZ * 1e6


def main() -> None:
    network = get_network("alexnet")
    design = optimize_multi_clp(network, budget_for("485t"), FLOAT32)
    device = DeviceSpec(design, part="485t")
    capacity = CYCLES_PER_SECOND / device.resolve_epoch()
    print(
        f"485t: {design.num_clps} CLPs, "
        f"{design.throughput(FREQ_MHZ):.1f} img/s/board"
    )
    print()

    # 1. Every drill, same fleet, same seed: incident vs calm tails.
    tenants = [TenantSpec("AlexNet", PoissonArrivals(
        2.0 * capacity / CYCLES_PER_SECOND))]
    rows = []
    for name in SCENARIO_NAMES:
        result = simulate_fleet(
            device.replicated(4),
            tenants,
            duration_cycles=1.2 * CYCLES_PER_SECOND,
            balancer="least-outstanding",
            seed=2017,
            queue_depth=64,
            drain=True,
            scenario=name,
        )
        resilience = result.resilience
        during = resilience.during.p99_cycles
        outside = resilience.outside.p99_cycles
        rows.append(
            (
                name,
                len(result.incidents),
                f"{resilience.availability:.1%}",
                result.total_lost,
                f"{result.cycles_to_ms(during):.0f}" if during else "-",
                f"{result.cycles_to_ms(outside):.0f}" if outside else "-",
            )
        )
    print(render_table(
        ["scenario", "incidents", "avail", "lost",
         "p99 ms (incident)", "p99 ms (calm)"],
        rows,
        title="4x VX485T at 2x capacity, every drill (seed 2017)",
    ))
    print("in-flight work on a failed board is lost, not dropped -- no")
    print("balancer can route around a request already inside the pipeline")
    print()

    # 2+3. The price of surviving rack-loss: plan N+0 vs N+1.
    # The drill's intrinsic losses mean a 0% drop budget is unattainable;
    # fund it (15%) and let the latency clause bind instead.
    slo = SLOSpec(p99_ms=400.0, max_drop_rate=0.15)
    rate = 1.5 * capacity
    rows = []
    for redundancy in (0, 1):
        # The probe window must dwarf the ~170 ms pipeline, or the rack
        # failure catches every request still in flight.
        plan = plan_capacity(
            device, rate, slo,
            max_replicas=16, seed=7, duration_ms=1500.0,
            scenario="rack-loss", redundancy=redundancy,
        )
        lost = plan.result.total_lost if plan.result else "-"
        rows.append(
            (
                f"N+{redundancy}",
                plan.scenario,
                plan.replicas if plan.meets else "-",
                lost,
            )
        )
    print(render_table(
        ["plan", "drill", "boards", "requests lost"],
        rows,
        title=f"surviving rack-loss at {rate:.0f} r/s "
        f"(p99<=400ms, shed<=15%)",
    ))
    print()

    # 4. Incident-aware autoscaling through a flash crowd.  Each window
    # replays the drill, so the controller sees the spike's own p99.
    schedule = [1.0 * capacity] * 6
    policy = AutoscalerPolicy(
        min_replicas=2,
        max_replicas=8,
        p99_high_ms=300.0,
        queue_high=8.0,
    )
    trace = autoscale(
        device, schedule, policy,
        window_ms=400.0, initial_replicas=2, seed=7,
        scenario="flash-crowd",
    )
    print(trace.format())


if __name__ == "__main__":
    main()
