#!/usr/bin/env python
"""Overload control: breaking a retry storm, step by step.

``failure_drill.py`` shows what a fleet does when boards die; this
example shows what its *clients* do afterwards, and why that matters
more.  A transient capacity loss fills the queues, naive clients time
out and retry, and the retries keep the queues pinned long after the
fault clears — the classic metastable failure.  The walk:

1. run the retry-storm drill (75% rack loss, naive unbounded retries)
   and watch goodput stay collapsed after capacity returns;
2. fix it one control at a time — deadline shedding (EDF), token-bucket
   admission, bounded jittered backoff — and compare post-fault
   goodput retention across the ladder;
3. brownout: a two-priority tenant mix where the controller sheds the
   batch class to keep the interactive class inside its deadline;
4. judge the controlled run against an SLO with the new deadline and
   min-goodput clauses.

Run:  python examples/overload_control.py
"""

from repro import FLOAT32, budget_for, get_network, optimize_multi_clp
from repro.analysis.report import render_table
from repro.fleet import DeviceSpec, simulate_fleet
from repro.scenario import RackFailure, ScenarioSpec
from repro.serve import (
    AdmissionPolicy,
    BrownoutPolicy,
    OverloadSpec,
    PoissonArrivals,
    RetryPolicy,
    SLOSpec,
    TenantSpec,
    evaluate_slo,
    pipeline_latency_cycles,
    simulate_traffic,
)

FREQ_MHZ = 100.0
CYCLES_PER_SECOND = FREQ_MHZ * 1e6
REPLICAS = 2
EPOCHS = 600
FAULT_START, FAULT_END = 0.25, 0.40


def retention(result, horizon):
    """Post-fault goodput rate as a fraction of the pre-fault rate."""
    report = result.overload
    pre = report.goodput_between(0, FAULT_START * horizon)
    pre_rate = pre / (FAULT_START * horizon)
    start = (FAULT_END + 0.1) * horizon
    post = report.goodput_between(start, horizon) / (horizon - start)
    return post / pre_rate if pre_rate > 0 else 0.0


def main() -> None:
    network = get_network("alexnet")
    design = optimize_multi_clp(network, budget_for("485t"), FLOAT32)
    device = DeviceSpec(design, part="485t")
    epoch = device.resolve_epoch()
    epoch_ms = epoch / CYCLES_PER_SECOND * 1e3
    horizon = EPOCHS * epoch
    deadline_ms = (
        pipeline_latency_cycles(design) / CYCLES_PER_SECOND * 1e3
        + 6 * epoch_ms
    )
    storm = ScenarioSpec(
        name="storm",
        faults=(RackFailure(fraction=0.75, start=FAULT_START,
                            duration=FAULT_END - FAULT_START),),
    )
    tenants = [TenantSpec("AlexNet",
                          PoissonArrivals(0.9 * REPLICAS / epoch))]

    # 1 & 2. The storm, then the control ladder rung by rung.  Every
    # rung keeps the naive retry client so the comparison is honest:
    # the question is what each control adds, not whether retries hurt.
    naive_retry = RetryPolicy(max_attempts=0, backoff="fixed",
                              base_ms=0.5 * epoch_ms,
                              cap_ms=0.5 * epoch_ms, jitter="none")
    capped_retry = RetryPolicy(max_attempts=3, backoff="exponential",
                               base_ms=epoch_ms, cap_ms=16 * epoch_ms,
                               jitter="decorrelated")
    bucket = AdmissionPolicy(
        rate_rps=0.95 * REPLICAS * CYCLES_PER_SECOND / epoch, burst=8.0)
    ladder = [
        ("naive (fifo, unbounded retries)",
         OverloadSpec(queue_policy="fifo", retry=naive_retry,
                      deadline_ms=deadline_ms)),
        ("+ EDF deadline shedding",
         OverloadSpec(queue_policy="edf", retry=naive_retry,
                      deadline_ms=deadline_ms)),
        ("+ token-bucket admission",
         OverloadSpec(queue_policy="edf", retry=naive_retry,
                      admission=bucket, deadline_ms=deadline_ms)),
        ("+ capped jittered backoff",
         OverloadSpec(queue_policy="edf", retry=capped_retry,
                      admission=bucket, deadline_ms=deadline_ms)),
    ]
    rows = []
    controlled = None
    for label, spec in ladder:
        result = simulate_fleet(
            device.replicated(REPLICAS), tenants,
            duration_cycles=horizon, seed=0, queue_depth=32,
            scenario=storm, overload=spec,
        )
        controlled = result
        tenant = result.tenants[0]
        rows.append([
            label,
            f"{retention(result, horizon):.2f}",
            f"{tenant.rejected}",
            f"{tenant.expired}",
            f"{tenant.late}",
            f"{tenant.retries}",
        ])
    print("Goodput retention after the fault clears "
          f"(75% rack loss, {REPLICAS}x AlexNet 485T):")
    print(render_table(
        ["configuration", "retention", "rejected", "expired", "late",
         "retries"], rows))
    print()

    # 3. Brownout across priorities: interactive (priority 1) rides
    # through a sustained overload because the controller sheds batch
    # (priority 0) first -- and only batch.
    interactive = get_network("squeezenet")
    batch = get_network("googlenet")
    from repro.opt.joint import optimize_joint

    joint = optimize_joint([interactive, batch],
                           budget_for("485t"), FLOAT32)
    joint_epoch = joint.epoch_cycles
    joint_epoch_ms = joint_epoch / CYCLES_PER_SECOND * 1e3
    # Deadlines and the brownout trigger sit on top of the design's
    # zero-queueing pipeline latency (57 epochs deep here) -- a
    # deadline below it would expire every request on arrival.
    joint_floor_ms = (
        pipeline_latency_cycles(joint) / CYCLES_PER_SECOND * 1e3
    )
    mix = [
        TenantSpec("GoogLeNet",
                   PoissonArrivals(1.1 / joint_epoch), priority=0),
        TenantSpec("SqueezeNet",
                   PoissonArrivals(0.7 / joint_epoch), priority=1),
    ]
    brownout = OverloadSpec(
        queue_policy="edf",
        brownout=BrownoutPolicy(p99_ms=joint_floor_ms + 4 * joint_epoch_ms,
                                window_ms=20 * joint_epoch_ms),
        deadline_ms=joint_floor_ms + 8 * joint_epoch_ms,
    )
    run = simulate_traffic(
        joint, mix, duration_cycles=600 * joint_epoch, seed=2,
        queue_depth=64, overload=brownout,
    )
    report = run.overload
    print(f"Brownout: {report.brownout_steps} controller steps")
    for stats in report.classes:
        share = stats.good / stats.arrivals if stats.arrivals else 0.0
        print(f"  priority {stats.priority} ({', '.join(stats.tenants)}): "
              f"good {share:.0%} of arrivals, "
              f"rejected {stats.rejected}, expired {stats.expired}")
    print()

    # 4. The controlled storm run against an SLO that knows about
    # deadlines and goodput.  The drop budget must fund the storm:
    # admission rejections during the fault are charged against it,
    # which is exactly the trade the control made.
    slo = SLOSpec(p99_ms=deadline_ms, max_drop_rate=0.5,
                  deadline_ms=deadline_ms, min_goodput_rps=30.0)
    verdict = evaluate_slo(controlled, slo)
    print(f"Controlled run vs SLO: {'MEETS' if verdict.meets else 'MISSES'}")
    for tenant in verdict.tenants:
        print(f"  {tenant.name}: goodput {tenant.goodput_rps:.1f} r/s, "
              f"charged drop rate {tenant.drop_rate:.1%}"
              + (f", violations: {'; '.join(tenant.violations)}"
                 if tenant.violations else ""))


if __name__ == "__main__":
    main()
