#!/usr/bin/env python
"""Provisioning a service: from one optimized board to a planned fleet.

The paper maximizes a single FPGA's efficiency; a production service
asks the next question — how many of those boards does a traffic target
take, and is the cheap board or the big board the better buy per served
request?  This example walks the whole fleet layer:

1. optimize AlexNet on a VX485T (the paper's canonical scenario);
2. compare load-balancing policies on a fixed 4-board fleet under the
   same seeded burst traffic (power-of-two-choices vs round-robin vs
   random vs tenant-affinity);
3. capacity-plan the minimum fleet meeting a p99/drop SLO at a target
   rate, then verify the planned fleet by simulation;
4. step a reactive autoscaler through a traffic spike;
5. price the 485T fleet against a 690T fleet for the same SLO
   (cost-to-serve: boards needed x relative board cost).

Run:  python examples/fleet_capacity.py
"""

from repro import FLOAT32, budget_for, get_network, optimize_multi_clp
from repro.analysis.report import render_table
from repro.fleet import (
    AutoscalerPolicy,
    DeviceSpec,
    autoscale,
    plan_capacity,
    simulate_fleet,
)
from repro.fpga.parts import get_part
from repro.serve import BurstyArrivals, SLOSpec, TenantSpec, evaluate_slo

FREQ_MHZ = 100.0
CYCLES_PER_SECOND = FREQ_MHZ * 1e6


def main() -> None:
    network = get_network("alexnet")

    # 1. One board per part: the unit the fleet replicates.
    devices = {}
    for part in ("485t", "690t"):
        design = optimize_multi_clp(network, budget_for(part), FLOAT32)
        devices[part] = DeviceSpec(design, part=part)
        print(
            f"{part}: {design.num_clps} CLPs, "
            f"{design.throughput(FREQ_MHZ):.1f} img/s/board, "
            f"board cost {get_part(part).cost_weight:.2f}"
        )
    print()

    # 2. Balancer bake-off: same seeded bursty traffic, same 4 boards.
    device = devices["485t"]
    capacity = CYCLES_PER_SECOND / device.resolve_epoch()
    tenants = [
        TenantSpec(
            "AlexNet",
            BurstyArrivals(
                3.0 * capacity / CYCLES_PER_SECOND,
                burstiness=4.0,
                period_cycles=0.02 * CYCLES_PER_SECOND,
            ),
        )
    ]
    rows = []
    for balancer in ("power-of-two", "round-robin", "least-outstanding",
                     "random", "tenant-affinity"):
        result = simulate_fleet(
            device.replicated(4),
            tenants,
            duration_cycles=0.8 * CYCLES_PER_SECOND,
            balancer=balancer,
            seed=2017,
            queue_depth=16,
            drain=True,
        )
        tenant = result.tenants[0]
        rows.append(
            (
                balancer,
                f"{result.cycles_to_ms(tenant.latency.p99):.1f}",
                f"{tenant.drop_rate:.1%}",
                f"{result.utilization_imbalance:.1%}",
            )
        )
    print(render_table(
        ["balancer", "p99 ms", "drop", "imbalance"],
        rows,
        title="4x VX485T under 3x-capacity bursty traffic (seed 2017)",
    ))
    print()

    # 3. Capacity plan: minimum boards for 2.5x capacity with a tail SLO.
    # AlexNet's pipeline alone is ~170 ms deep on this board, so the
    # tail SLO must sit above that floor; 250 ms leaves queueing headroom.
    slo = SLOSpec(p99_ms=250.0, max_drop_rate=0.01)
    rate = 2.5 * capacity
    plan = plan_capacity(device, rate, slo, max_replicas=16, seed=7)
    print(plan.format())
    if plan.meets:
        verification = evaluate_slo(plan.result, slo)
        print(
            f"verification: planned fleet meets SLO = {verification.meets} "
            f"(p99 {verification.worst_p99_ms:.1f} ms, "
            f"drops {verification.worst_drop_rate:.1%})"
        )
    print()

    # 4. Reactive autoscaling through a spike: 0.5x -> 3x -> 0.5x capacity.
    schedule = [0.5 * capacity] * 2 + [3.0 * capacity] * 4 + [0.5 * capacity] * 3
    policy = AutoscalerPolicy(
        min_replicas=1,
        max_replicas=8,
        p99_high_ms=250.0,
        queue_high=4.0,
        p99_low_ms=180.0,
        queue_low=0.5,
    )
    trace = autoscale(device, schedule, policy, window_ms=60.0, seed=7)
    print(trace.format())
    print()

    # 5. Cost-to-serve: is the bigger board worth its price at this rate?
    rows = []
    for part, spec in devices.items():
        part_plan = plan_capacity(spec, rate, slo, max_replicas=16, seed=7)
        cost = get_part(part).cost_weight
        rows.append(
            (
                part,
                part_plan.replicas,
                f"{cost:.2f}",
                f"{part_plan.replicas * cost:.2f}" if part_plan.meets else "-",
            )
        )
    print(render_table(
        ["part", "boards", "board cost", "fleet cost"],
        rows,
        title=f"cost to serve {rate:.0f} r/s at p99<=250ms, drops<=1%",
    ))


if __name__ == "__main__":
    main()
