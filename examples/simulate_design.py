#!/usr/bin/env python
"""Validate an optimized design dynamically, from numbers to numerics.

Three levels of validation for a SqueezeNet fixed16 accelerator:

1. functional — the tiled loop nest (Listing 2) computes exactly the
   same outputs as the reference convolution (Listing 1);
2. cycle-level — a double-buffered CLP simulation matches the analytic
   cycle model and quantifies stalls under a bandwidth cap;
3. system — a discrete-event simulation of all CLPs sharing one memory
   channel, swept across channel bandwidths.

Run:  python examples/simulate_design.py
"""

import numpy as np

from repro import FIXED16, budget_for, get_network
from repro.opt import optimize_multi_clp
from repro.sim import (
    random_layer_data,
    reference_conv,
    simulate_clp,
    simulate_system,
    tiled_conv,
)


def functional_check(design) -> None:
    clp = design.clps[0]
    layer, (tr, tc) = clp.layers[0], clp.tile_plans[0]
    inputs, weights, bias = random_layer_data(layer, seed=7)
    golden = reference_conv(layer, inputs, weights, bias)
    tiled, counters = tiled_conv(
        layer, inputs, weights, tn=clp.tn, tm=clp.tm, tr=tr, tc=tc, bias=bias
    )
    assert np.allclose(golden, tiled)
    print(f"functional: {layer.name} on CLP0 matches the reference "
          f"({counters.tile_count} tiles, "
          f"{counters.total_words / 1e3:.0f}k words moved)")


def clp_check(design) -> None:
    clp = max(design.clps, key=lambda c: c.total_cycles)
    exact = simulate_clp(clp)
    print(f"cycle-level: bottleneck CLP model {clp.total_cycles} vs "
          f"simulated {exact.total_cycles:.0f} cycles (unlimited bandwidth)")
    capped = simulate_clp(clp, bytes_per_cycle=8.0)
    print(f"             at 8 B/cycle it stalls "
          f"{capped.total_stall_cycles / capped.total_cycles:.0%} "
          f"of the time")


def system_sweep(design, frequency_mhz: float) -> None:
    need = design.required_bandwidth_bytes_per_cycle()
    print(f"system: modelled bandwidth requirement "
          f"{need * frequency_mhz * 1e6 / 1e9:.1f} GB/s")
    for factor in (0.5, 1.0, 1.5, 2.0):
        result = simulate_system(design, bytes_per_cycle=need * factor)
        slowdown = result.epoch_cycles / design.epoch_cycles
        print(f"  {factor:>3.1f}x of requirement -> epoch "
              f"{result.epoch_cycles:>10.0f} cycles "
              f"({slowdown:.2f}x of ideal), channel "
              f"{result.channel_utilization():.0%} busy")


def main() -> None:
    network = get_network("squeezenet")
    budget = budget_for("690t", frequency_mhz=170.0)
    design = optimize_multi_clp(
        network, budget, FIXED16, ordering="compute-to-data"
    )
    print(design.describe())
    print()
    functional_check(design)
    clp_check(design)
    system_sweep(design, 170.0)


if __name__ == "__main__":
    main()
