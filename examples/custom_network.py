#!/usr/bin/env python
"""Bring your own CNN: define a custom network and generate its accelerator.

Builds a small VGG-style embedded-vision CNN that is not in the zoo,
optimizes a Multi-CLP accelerator for it on a Virtex-7 485T with 16-bit
fixed point, and emits the HLS C++ sources a Vivado user would synthesize.

Run:  python examples/custom_network.py [output.cpp]
"""

import sys

from repro import FIXED16, ConvLayer, Network, budget_for
from repro.hls import generate_system, layer_descriptor
from repro.opt import optimize_multi_clp


def build_network() -> Network:
    """A 96x96-input detector: conv head plus downsampling stages."""
    return Network(
        "TinyDetector",
        [
            ConvLayer("stem", n=3, m=32, r=48, c=48, k=5, s=2),
            ConvLayer("stage1_a", n=32, m=64, r=48, c=48, k=3),
            ConvLayer("stage1_b", n=64, m=64, r=48, c=48, k=3),
            ConvLayer("stage2_a", n=64, m=128, r=24, c=24, k=3),
            ConvLayer("stage2_b", n=128, m=128, r=24, c=24, k=3),
            ConvLayer("stage3_a", n=128, m=256, r=12, c=12, k=3),
            ConvLayer("stage3_b", n=256, m=256, r=12, c=12, k=3),
            ConvLayer("head", n=256, m=32, r=12, c=12, k=1),
        ],
    )


def main() -> None:
    network = build_network()
    budget = budget_for("485t", frequency_mhz=170.0)
    print(network.describe())
    print()

    design = optimize_multi_clp(network, budget, FIXED16)
    print(design.describe())
    print(f"throughput @170MHz: {design.throughput(170.0):.0f} images/s")
    print(f"bandwidth needed:   "
          f"{design.required_bandwidth_gbps(170.0):.2f} GB/s")
    print()

    # The runtime descriptors the host writes before each layer run.
    for clp_index, clp in enumerate(design.clps):
        for layer in clp.layers:
            descriptor = layer_descriptor(clp, layer.name)
            print(f"clp{clp_index} <- {layer.name}: "
                  f"{descriptor.pack().hex()}")

    source = generate_system(design)
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as handle:
            handle.write(source)
        print(f"\nHLS sources written to {sys.argv[1]} "
              f"({len(source.splitlines())} lines)")
    else:
        print(f"\nGenerated {len(source.splitlines())} lines of HLS C++ "
              f"(pass a filename to save them)")


if __name__ == "__main__":
    main()
