#!/usr/bin/env python
"""Joint optimization + multi-tenant serving (Sections 4.1 and 4.3).

A datacenter card often hosts several models.  The paper notes its
optimization "can be simultaneously applied to multiple target CNNs to
jointly optimize their performance": pooling the layers lets similar
layers from different networks share a specialized CLP.

This example first compares the joint accelerator against 50/50 time
multiplexing of two dedicated designs, then *load-tests* the joint
design with the `repro.serve` traffic simulator: seeded Poisson request
streams per tenant, bounded FIFO queues, and the epoch-pipelined
dispatch of Figure 5.

Run:  python examples/multi_tenant.py
"""

from repro import FIXED16, budget_for, get_network
from repro.analysis.report import render_table
from repro.opt import optimize_joint, optimize_multi_clp
from repro.serve import (
    PoissonArrivals,
    TenantSpec,
    service_capacity_rps,
    simulate_traffic,
)

FREQ_MHZ = 170.0


def main() -> None:
    alexnet = get_network("alexnet")
    squeezenet = get_network("squeezenet")
    budget = budget_for("690t", frequency_mhz=FREQ_MHZ)

    joint = optimize_joint([alexnet, squeezenet], budget, FIXED16)
    print(joint.describe())
    print()

    # Compare against time-multiplexing two dedicated designs: each
    # network gets the full chip but only half the wall-clock.
    rows = []
    dedicated = {}
    for network in (alexnet, squeezenet):
        design = optimize_multi_clp(network, budget, FIXED16)
        dedicated[network.name] = design
    joint_rates = joint.throughput_per_network(FREQ_MHZ)
    for network in (alexnet, squeezenet):
        ded = dedicated[network.name]
        time_mux_rate = ded.throughput(FREQ_MHZ) / 2  # half the time slice
        rows.append(
            (
                network.name,
                f"{joint_rates[network.name]:.0f}",
                f"{time_mux_rate:.0f}",
                f"{joint_rates[network.name] / time_mux_rate:.2f}x",
            )
        )
    print(render_table(
        ["network", "joint img/s", "time-mux img/s", "joint advantage"],
        rows,
        title=f"Joint accelerator vs 50/50 time multiplexing @{FREQ_MHZ:.0f}MHz",
    ))
    print()
    for network in (alexnet, squeezenet):
        shared = joint.clps_serving(network.name)
        print(f"{network.name} layers run on CLPs {shared}")
    print()

    # Load-test the joint design: AlexNet tenants at 60% of capacity,
    # SqueezeNet at 85%, seeded Poisson arrivals, 500 ms of traffic.
    cycles_per_second = FREQ_MHZ * 1e6
    capacity = service_capacity_rps(joint, FREQ_MHZ)
    tenants = [
        TenantSpec("AlexNet", PoissonArrivals(0.60 * capacity / cycles_per_second)),
        TenantSpec("SqueezeNet", PoissonArrivals(0.85 * capacity / cycles_per_second)),
    ]
    result = simulate_traffic(
        joint,
        tenants,
        duration_cycles=0.5 * cycles_per_second,  # 500 ms
        frequency_mhz=FREQ_MHZ,
        seed=2017,
        queue_depth=32,
    )
    print(result.format())


if __name__ == "__main__":
    main()
