#!/usr/bin/env python
"""Joint optimization: one accelerator serving two CNNs (Section 4.3).

A datacenter card often hosts several models.  The paper notes its
optimization "can be simultaneously applied to multiple target CNNs to
jointly optimize their performance": pooling the layers lets similar
layers from different networks share a specialized CLP.

Run:  python examples/multi_tenant.py
"""

from repro import FIXED16, budget_for, get_network
from repro.analysis.report import render_table
from repro.opt import optimize_joint, optimize_multi_clp


def main() -> None:
    alexnet = get_network("alexnet")
    squeezenet = get_network("squeezenet")
    budget = budget_for("690t", frequency_mhz=170.0)

    joint = optimize_joint([alexnet, squeezenet], budget, FIXED16)
    print(joint.describe())
    print()

    # Compare against time-multiplexing two dedicated designs: each
    # network gets the full chip but only half the wall-clock.
    rows = []
    dedicated = {}
    for network in (alexnet, squeezenet):
        design = optimize_multi_clp(network, budget, FIXED16)
        dedicated[network.name] = design
    joint_rates = joint.throughput_per_network(170.0)
    for network in (alexnet, squeezenet):
        ded = dedicated[network.name]
        time_mux_rate = ded.throughput(170.0) / 2  # half the time slice
        rows.append(
            (
                network.name,
                f"{joint_rates[network.name]:.0f}",
                f"{time_mux_rate:.0f}",
                f"{joint_rates[network.name] / time_mux_rate:.2f}x",
            )
        )
    print(render_table(
        ["network", "joint img/s", "time-mux img/s", "joint advantage"],
        rows,
        title="Joint accelerator vs 50/50 time multiplexing @170MHz",
    ))
    print()
    for network in (alexnet, squeezenet):
        shared = joint.clps_serving(network.name)
        print(f"{network.name} layers run on CLPs {shared}")


if __name__ == "__main__":
    main()
