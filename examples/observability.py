#!/usr/bin/env python
"""Observability: watch a run instead of reading its postmortem.

Every other example prints end-of-run aggregates.  This one turns on
the observability layer and looks *inside* a run:

1. replay a failure drill with windowed telemetry and show queue depth,
   healthy replicas, and per-window loss around the incidents — the
   aggregate drop rate says what happened, the time series says when;
2. record the same run's request-lifecycle trace and export it as
   Chrome ``trace_event`` JSON (open in ``chrome://tracing`` or
   Perfetto to scrub through queue waits, dispatches, and the
   incident windows);
3. prove the instrumentation is free when it matters: the instrumented
   run's scalars are bit-identical to the bare run's;
4. render the whole thing as a one-page Markdown report — the same
   artifact ``repro report`` builds from any saved run.

Run:  python examples/observability.py
"""

from repro import FLOAT32, budget_for, get_network, optimize_multi_clp
from repro.analysis.report import render_run_report, sparkline
from repro.core.serialize import fleet_result_to_dict
from repro.fleet import DeviceSpec, simulate_fleet
from repro.obs import ObsSpec, TraceRecorder
from repro.serve import PoissonArrivals, TenantSpec

FREQ_MHZ = 100.0
CYCLES_PER_SECOND = FREQ_MHZ * 1e6


def main() -> None:
    network = get_network("alexnet")
    design = optimize_multi_clp(network, budget_for("485t"), FLOAT32)
    device = DeviceSpec(design, part="485t")
    epoch = device.resolve_epoch()
    tenants = [TenantSpec("AlexNet", PoissonArrivals(2.5 / epoch))]
    kwargs = dict(
        duration_cycles=80.0 * epoch,
        seed=7,
        scenario="rolling-reboot",
    )
    fleet = device.replicated(3)

    # 1+2. One instrumented run: telemetry windows plus a full trace.
    trace = TraceRecorder()
    observed = simulate_fleet(
        fleet,
        tenants,
        obs=ObsSpec(timeseries=True, windows=20, trace=trace),
        **kwargs,
    )
    timeseries = observed.timeseries
    print(
        f"rolling reboot over 3 boards: {len(observed.incidents)} "
        f"incidents, {observed.total_lost} requests lost"
    )
    print(f"{len(timeseries.times)} telemetry windows:")
    for name in ("queue_depth/AlexNet", "healthy_replicas", "lost/AlexNet"):
        print(f"  {name:<22} {sparkline(timeseries.get(name))}")
    print()

    trace.write_chrome("observability_trace.json", frequency_mhz=FREQ_MHZ)
    spans = sum(1 for e in trace.events if e["ph"] == "b")
    print(
        f"trace: {len(trace.events)} events ({spans} request spans) "
        "-> observability_trace.json (load in chrome://tracing)"
    )
    print()

    # 3. The bit-neutrality contract: instrumentation observed the run
    # without changing a single scalar of it.
    bare = simulate_fleet(fleet, tenants, **kwargs)
    bare_record = fleet_result_to_dict(bare)
    observed_record = fleet_result_to_dict(observed)
    observed_record.pop("timeseries")
    assert observed_record == bare_record
    print("bit-neutrality: instrumented scalars == bare scalars")
    print()

    # 4. The one-page report (same renderer as `repro report`).
    report = render_run_report(
        [observed], ["rolling-reboot drill"], title="Observability demo"
    )
    with open("observability_report.md", "w") as handle:
        handle.write(report)
    print("report -> observability_report.md")
    print()
    print(report)


if __name__ == "__main__":
    main()
