#!/usr/bin/env python
"""Explore the BRAM-vs-bandwidth tradeoff of a Multi-CLP design (Fig. 6).

Larger on-chip buffers cut weight re-fetching and therefore off-chip
traffic; the optimizer exposes the whole Pareto frontier so a deployment
can pick its operating point from the board's actual DRAM headroom.

Run:  python examples/bandwidth_tradeoff.py
"""

from repro import FLOAT32, budget_for, get_network
from repro.analysis.figures import _partition_of
from repro.analysis.report import ascii_plot, render_table
from repro.opt import optimize_multi_clp
from repro.opt.memory import system_tradeoff_curve


def main() -> None:
    network = get_network("alexnet")
    frequency_mhz = 100.0
    for part in ("485t", "690t"):
        budget = budget_for(part)
        design = optimize_multi_clp(network, budget, FLOAT32)
        curve = system_tradeoff_curve(
            _partition_of(design), FLOAT32, cycle_target=design.epoch_cycles
        )
        points = [
            (bram, bpc * frequency_mhz * 1e6 / 1e9) for bram, bpc in curve
        ]
        in_budget = [p for p in points if p[0] <= budget.bram18k]
        print(render_table(
            ["BRAM-18K", "bandwidth GB/s"],
            [(bram, f"{gbps:.2f}") for bram, gbps in in_budget[:12]],
            title=f"AlexNet float Multi-CLP on {part} "
                  f"(budget {budget.bram18k} BRAM)",
        ))
        print()
        print(ascii_plot(in_budget, x_label="BRAM-18K", y_label="GB/s"))
        print()
        # Two useful endpoints, as the paper highlights with A/B and C/D.
        cheapest = min(in_budget, key=lambda p: p[0])
        leanest = min(in_budget, key=lambda p: p[1])
        print(f"  iso-BRAM point:      {cheapest[0]} BRAM at "
              f"{cheapest[1]:.2f} GB/s")
        print(f"  iso-bandwidth point: {leanest[0]} BRAM at "
              f"{leanest[1]:.2f} GB/s")
        print()


if __name__ == "__main__":
    main()
