#!/usr/bin/env python
"""Design-space exploration across networks, devices, and datatypes.

Sweeps the full evaluation grid of the paper's Table 1 plus a CLP-count
sweep through the ``repro.dse`` engine: points solve in parallel across
CPU cores, every result lands in a JSON-lines store, and re-running the
script serves everything from cache (delete the store to recompute).

Run:  python examples/design_space_exploration.py
"""

from repro.analysis.report import render_table
from repro.dse import (
    SweepSpec,
    best_per_group,
    frontier_table,
    run_sweep,
)

STORE = "dse_results.jsonl"


def sweep_networks() -> None:
    spec = SweepSpec(
        networks=("alexnet", "squeezenet", "googlenet"),
        parts=("485t", "690t"),
        dtypes=("float32", "fixed16"),
        modes=("single", "multi"),
    )
    outcome = run_sweep(spec, store=STORE)
    print(f"[grid] {outcome.format()}")

    by_scenario = {
        (r.point.network, r.point.part, r.point.dtype, r.point.mode): r
        for r in outcome.ok_results()
    }
    rows = []
    for network in ("alexnet", "squeezenet", "googlenet"):
        for part in ("485t", "690t"):
            for dtype in ("float32", "fixed16"):
                single = by_scenario.get((network, part, dtype, "single"))
                multi = by_scenario.get((network, part, dtype, "multi"))
                if single is None or multi is None:
                    rows.append((network, part, dtype, "-", "-", "-",
                                 "infeasible"))
                    continue
                rows.append(
                    (
                        network,
                        part,
                        dtype,
                        multi.metrics["num_clps"],
                        f"{single.metrics['arithmetic_utilization']:.0%}",
                        f"{multi.metrics['arithmetic_utilization']:.0%}",
                        f"{single.metrics['epoch_cycles'] / multi.metrics['epoch_cycles']:.2f}x",
                    )
                )
    print(render_table(
        ["network", "FPGA", "dtype", "CLPs", "S util", "M util", "speedup"],
        rows,
        title="Single- vs Multi-CLP across the design space",
    ))

    print()
    print(frontier_table(outcome.results, maximize=("throughput",),
                         minimize=("dsp",)))

    print()
    winners = best_per_group(outcome.results, by=("network", "dtype"),
                             key="throughput")
    for (network, dtype), result in sorted(winners.items()):
        print(
            f"  best {network}/{dtype}: {result.point.budget_label} "
            f"{result.point.mode} -> "
            f"{result.metrics['throughput_images_per_s']:.1f} img/s"
        )


def sweep_clp_count() -> None:
    spec = SweepSpec(
        networks=("squeezenet",),
        parts=("690t",),
        dtypes=("fixed16",),
        frequencies_mhz=(170.0,),
        modes=("multi",),
        max_clps=(1, 2, 3, 4, 6),
        orderings=("compute-to-data",),
    )
    outcome = run_sweep(spec, store=STORE)
    print(f"[clp-count] {outcome.format()}")

    rows = []
    baseline = None
    for result in outcome.ok_results():
        epoch = result.metrics["epoch_cycles"]
        baseline = baseline or epoch
        rows.append(
            (
                result.point.max_clps,
                result.metrics["num_clps"],
                epoch,
                f"{baseline / epoch:.2f}x",
                f"{result.metrics['arithmetic_utilization']:.0%}",
            )
        )
    print(render_table(
        ["max CLPs", "used", "epoch cycles", "speedup", "utilization"],
        rows,
        title="SqueezeNet fixed16 on 690T: diminishing returns in CLP count",
    ))


if __name__ == "__main__":
    sweep_networks()
    print()
    sweep_clp_count()
