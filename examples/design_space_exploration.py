#!/usr/bin/env python
"""Design-space exploration across networks, devices, and datatypes.

Sweeps the full evaluation grid of the paper's Table 1 plus a CLP-count
sweep, printing which partitionings win where — the workflow a deployment
engineer would use to size an accelerator for a new model/board pair.

Run:  python examples/design_space_exploration.py
"""

from repro import FIXED16, FLOAT32, budget_for, get_network
from repro.analysis.report import render_table
from repro.opt import optimize_multi_clp, optimize_single_clp


def sweep_networks() -> None:
    rows = []
    for network_name in ("alexnet", "squeezenet", "googlenet"):
        network = get_network(network_name)
        for part in ("485t", "690t"):
            for dtype in (FLOAT32, FIXED16):
                budget = budget_for(part)
                single = optimize_single_clp(network, budget, dtype)
                multi = optimize_multi_clp(network, budget, dtype)
                rows.append(
                    (
                        network_name,
                        part,
                        dtype.label,
                        multi.num_clps,
                        f"{single.arithmetic_utilization:.0%}",
                        f"{multi.arithmetic_utilization:.0%}",
                        f"{single.epoch_cycles / multi.epoch_cycles:.2f}x",
                    )
                )
    print(render_table(
        ["network", "FPGA", "dtype", "CLPs", "S util", "M util", "speedup"],
        rows,
        title="Single- vs Multi-CLP across the design space",
    ))


def sweep_clp_count() -> None:
    network = get_network("squeezenet")
    budget = budget_for("690t", frequency_mhz=170.0)
    rows = []
    baseline = None
    for max_clps in (1, 2, 3, 4, 6):
        design = optimize_multi_clp(
            network, budget, FIXED16, max_clps=max_clps,
            ordering="compute-to-data",
        )
        baseline = baseline or design.epoch_cycles
        rows.append(
            (
                max_clps,
                design.num_clps,
                design.epoch_cycles,
                f"{baseline / design.epoch_cycles:.2f}x",
                f"{design.arithmetic_utilization:.0%}",
            )
        )
    print()
    print(render_table(
        ["max CLPs", "used", "epoch cycles", "speedup", "utilization"],
        rows,
        title="SqueezeNet fixed16 on 690T: diminishing returns in CLP count",
    ))


if __name__ == "__main__":
    sweep_networks()
    sweep_clp_count()
