#!/usr/bin/env python
"""Quickstart: optimize a Multi-CLP accelerator for AlexNet.

Reproduces the paper's headline AlexNet comparison on a Virtex-7 485T
with 32-bit floating point at 100 MHz: a Single-CLP baseline (the Zhang
FPGA'15 state of the art) versus the Multi-CLP partitioning.

Run:  python examples/quickstart.py
"""

from repro import FLOAT32, budget_for, get_network
from repro.opt import optimize_multi_clp, optimize_single_clp


def main() -> None:
    network = get_network("alexnet")
    budget = budget_for("485t")  # 80% of the chip: 2,240 DSP / 1,648 BRAM

    print(f"Optimizing {network.name} "
          f"({network.total_macs / 1e6:.0f} MMACs per image)\n")

    single = optimize_single_clp(network, budget, FLOAT32)
    multi = optimize_multi_clp(network, budget, FLOAT32)

    for label, design in (("Single-CLP", single), ("Multi-CLP", multi)):
        print(f"=== {label} ===")
        print(design.describe())
        print(f"  throughput @100MHz: {design.throughput(100.0):.1f} images/s")
        print(f"  required bandwidth: "
              f"{design.required_bandwidth_gbps(100.0):.2f} GB/s")
        print()

    speedup = single.epoch_cycles / multi.epoch_cycles
    print(f"Multi-CLP speedup: {speedup:.2f}x "
          f"(utilization {single.arithmetic_utilization:.1%} -> "
          f"{multi.arithmetic_utilization:.1%})")


if __name__ == "__main__":
    main()
